// The awd.hpp facade contract: every exported name is reachable as a plain
// `awd::` name, `awd::v1::` spells the same entity (v1 is inline), and the
// surface is wide enough to drive the pipeline end to end without touching
// an internal header (this TU includes only awd.hpp).
#include <gtest/gtest.h>

#include <type_traits>

#include "awd.hpp"

namespace {

// Inline-namespace versioning: the plain and the explicitly versioned names
// are the same types, not lookalikes.
static_assert(std::is_same_v<awd::DetectionSystem, awd::v1::DetectionSystem>);
static_assert(std::is_same_v<awd::StreamEngine, awd::v1::StreamEngine>);
static_assert(std::is_same_v<awd::ExperimentSpec, awd::v1::ExperimentSpec>);
static_assert(std::is_same_v<awd::Result<int>, awd::v1::Result<int>>);
static_assert(std::is_same_v<awd::Status, awd::v1::Status>);
static_assert(std::is_same_v<awd::Trace, awd::v1::Trace>);
static_assert(std::is_same_v<awd::Vec, awd::v1::Vec>);

// ...and they alias the internal definitions (the facade re-exports, it does
// not wrap).
static_assert(std::is_same_v<awd::DetectionSystem, awd::core::DetectionSystem>);
static_assert(std::is_same_v<awd::StreamEngine, awd::serve::StreamEngine>);
static_assert(std::is_same_v<awd::StepRecord, awd::sim::StepRecord>);
static_assert(std::is_same_v<awd::HealthState, awd::fault::HealthState>);

TEST(Facade, DrivesThePipelineEndToEnd) {
  const awd::SimulatorCase scase = awd::simulator_case("dc_motor");
  ASSERT_TRUE(scase.check().is_ok());

  awd::Result<awd::DetectionSystem> system =
      awd::DetectionSystem::create(scase, awd::AttackKind::kBias, /*seed=*/1);
  ASSERT_TRUE(system.is_ok());
  const awd::Trace trace = std::move(system).value().run();

  const awd::RunMetrics metrics = awd::compute_metrics(
      trace, scase.attack_start, scase.attack_duration, awd::Strategy::kAdaptive);
  EXPECT_GT(metrics.deadline_at_onset, 0u);

  const awd::CellResult cell = awd::run_cell({.scase = scase,
                                              .attack = awd::AttackKind::kBias,
                                              .runs = 2,
                                              .base_seed = 1,
                                              .threads = 1})
                                   .value();
  EXPECT_EQ(cell.runs, 2u);
}

TEST(Facade, Table1BankIsExported) {
  const auto cases = awd::table1_cases();
  ASSERT_EQ(cases.size(), 5u);
  for (const awd::SimulatorCase& scase : cases) {
    EXPECT_TRUE(scase.check().is_ok()) << scase.key;
  }
}

}  // namespace
