// DetectionSystem::create — the non-throwing factory: invalid inputs come
// back as Status (never an exception), valid inputs build a system whose
// run is bit-identical to the throwing constructor's, and shared deadline
// estimators are validated against the case before being adopted.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "awd.hpp"

namespace {

using namespace awd;

TEST(DetectionSystemFactory, InvalidCaseReturnsStatusInsteadOfThrowing) {
  SimulatorCase scase = simulator_case("dc_motor");
  scase.tau = Vec{};  // wrong dimension
  Result<DetectionSystem> result = DetectionSystem::create(scase, AttackKind::kBias, 1);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidInput);
}

TEST(DetectionSystemFactory, ThrowingConstructorStillThrowsWithDiagnostics) {
  SimulatorCase scase = simulator_case("dc_motor");
  scase.tau = Vec{};
  EXPECT_THROW(DetectionSystem(scase, AttackKind::kBias, 1), std::invalid_argument);
}

TEST(DetectionSystemFactory, FactoryRunBitIdenticalToThrowingConstructor) {
  const SimulatorCase scase = simulator_case("series_rlc");
  DetectionSystem via_ctor(scase, AttackKind::kDelay, /*seed=*/13);
  Result<DetectionSystem> via_factory =
      DetectionSystem::create(scase, AttackKind::kDelay, /*seed=*/13);
  ASSERT_TRUE(via_factory.is_ok());
  DetectionSystem factory_system = std::move(via_factory).value();

  for (std::size_t t = 0; t < scase.steps; ++t) {
    const StepRecord a = via_ctor.step();
    const StepRecord b = factory_system.step();
    ASSERT_EQ(a.deadline, b.deadline) << "t=" << t;
    ASSERT_EQ(a.window, b.window) << "t=" << t;
    ASSERT_EQ(a.adaptive_alarm, b.adaptive_alarm) << "t=" << t;
    ASSERT_EQ(a.fixed_alarm, b.fixed_alarm) << "t=" << t;
    ASSERT_EQ(a.residual, b.residual) << "t=" << t;
  }
}

TEST(DetectionSystemFactory, SharedEstimatorAdoptedWhenCompatible) {
  const SimulatorCase scase = simulator_case("dc_motor");
  DetectionSystemOptions options;
  {
    // Borrow a freshly built system's estimator, the way StreamEngine's
    // per-family cache does.
    Result<DetectionSystem> donor = DetectionSystem::create(scase, AttackKind::kNone, 1);
    ASSERT_TRUE(donor.is_ok());
    options.shared_deadline_estimator = donor.value().estimator_handle();
  }
  Result<DetectionSystem> shared =
      DetectionSystem::create(scase, AttackKind::kBias, 2, options);
  ASSERT_TRUE(shared.is_ok());
  EXPECT_EQ(shared.value().estimator_handle().get(),
            options.shared_deadline_estimator.get());

  DetectionSystem owned(scase, AttackKind::kBias, 2);
  DetectionSystem borrowed = std::move(shared).value();
  for (std::size_t t = 0; t < scase.steps; ++t) {
    const StepRecord a = owned.step();
    const StepRecord b = borrowed.step();
    ASSERT_EQ(a.deadline, b.deadline) << "t=" << t;
    ASSERT_EQ(a.adaptive_alarm, b.adaptive_alarm) << "t=" << t;
  }
}

TEST(DetectionSystemFactory, SharedEstimatorConfigMismatchRejected) {
  const SimulatorCase donor_case = simulator_case("dc_motor");
  Result<DetectionSystem> donor = DetectionSystem::create(donor_case, AttackKind::kNone, 1);
  ASSERT_TRUE(donor.is_ok());

  // Same plant, different max_window: the estimator's deadline tables no
  // longer describe this configuration.
  SimulatorCase tweaked = donor_case;
  tweaked.max_window = donor_case.max_window + 5;
  DetectionSystemOptions options;
  options.shared_deadline_estimator = donor.value().estimator_handle();
  Result<DetectionSystem> result =
      DetectionSystem::create(tweaked, AttackKind::kBias, 2, options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidInput);

  // Different plant dimension (12-state quadrotor vs 3-state motor):
  // rejected as well.
  const SimulatorCase other = simulator_case("quadrotor");
  DetectionSystemOptions cross;
  cross.shared_deadline_estimator = donor.value().estimator_handle();
  EXPECT_FALSE(DetectionSystem::create(other, AttackKind::kBias, 2, cross).is_ok());
}

}  // namespace
