// Self-containment: "awd.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "awd.hpp"
#include "awd.hpp"

int awd_selfcontain_awd() { return 1; }
