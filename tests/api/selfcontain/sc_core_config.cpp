// Self-containment: "core/config.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "core/config.hpp"
#include "core/config.hpp"

int awd_selfcontain_core_config() { return 1; }
