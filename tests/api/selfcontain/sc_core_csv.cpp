// Self-containment: "core/csv.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "core/csv.hpp"
#include "core/csv.hpp"

int awd_selfcontain_core_csv() { return 1; }
