// Self-containment: "core/detection_system.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "core/detection_system.hpp"
#include "core/detection_system.hpp"

int awd_selfcontain_core_detection_system() { return 1; }
