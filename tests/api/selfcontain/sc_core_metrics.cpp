// Self-containment: "core/metrics.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "core/metrics.hpp"
#include "core/metrics.hpp"

int awd_selfcontain_core_metrics() { return 1; }
