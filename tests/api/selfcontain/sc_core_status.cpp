// Self-containment: "core/status.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "core/status.hpp"
#include "core/status.hpp"

int awd_selfcontain_core_status() { return 1; }
