// Self-containment: "fault/fault.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "fault/fault.hpp"
#include "fault/fault.hpp"

int awd_selfcontain_fault_fault() { return 1; }
