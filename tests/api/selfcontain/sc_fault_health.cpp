// Self-containment: "fault/health.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "fault/health.hpp"
#include "fault/health.hpp"

int awd_selfcontain_fault_health() { return 1; }
