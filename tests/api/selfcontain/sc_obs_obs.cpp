// Self-containment: "obs/obs.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "obs/obs.hpp"
#include "obs/obs.hpp"

int awd_selfcontain_obs_obs() { return 1; }
