// Self-containment: "reach/backend.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "reach/backend.hpp"
#include "reach/backend.hpp"

int awd_selfcontain_reach_backend() { return 1; }
