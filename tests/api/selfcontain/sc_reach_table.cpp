// Self-containment: "reach/table.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "reach/table.hpp"
#include "reach/table.hpp"

int awd_selfcontain_reach_table() { return 1; }
