// Self-containment: "serve/stream_engine.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "serve/stream_engine.hpp"
#include "serve/stream_engine.hpp"

int awd_selfcontain_serve_stream_engine() { return 1; }
