// Self-containment: "sim/simulator.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "sim/simulator.hpp"
#include "sim/simulator.hpp"

int awd_selfcontain_sim_simulator() { return 1; }
