// Self-containment: "sim/trace.hpp" must compile as the first and only
// project include in a TU, and be idempotent under double inclusion
// (api tier; built into awd_api_tests by tests/api/CMakeLists.txt).
#include "sim/trace.hpp"
#include "sim/trace.hpp"

int awd_selfcontain_sim_trace() { return 1; }
