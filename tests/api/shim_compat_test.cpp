// Compatibility contract of the deprecated positional shims: they must
// forward to the spec-based runners and return identical results.  This is
// the one translation unit allowed to call the deprecated surface — its
// target compiles with -Wno-deprecated-declarations while the rest of the
// tree promotes that warning to an error (see tests/api/CMakeLists.txt and
// the root CMakeLists).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

TEST(DeprecatedShims, PositionalRunCellMatchesSpecApi) {
  const SimulatorCase scase = simulator_case("dc_motor");
  MetricsOptions options;
  options.warmup = 100;

  const CellResult via_shim =
      run_cell(scase, AttackKind::kBias, /*runs=*/4, /*base_seed=*/3, options,
               /*threads=*/1);
  const CellResult via_spec = run_cell({.scase = scase,
                                        .attack = AttackKind::kBias,
                                        .runs = 4,
                                        .base_seed = 3,
                                        .metrics = options,
                                        .threads = 1})
                                  .value();
  EXPECT_EQ(via_shim, via_spec);
}

TEST(DeprecatedShims, PositionalSweepMatchesSpecApi) {
  const SimulatorCase scase = simulator_case("series_rlc");
  const std::vector<std::size_t> windows = {0, 20, 40};

  const std::vector<WindowSweepPoint> via_shim =
      fixed_window_sweep(scase, AttackKind::kBias, windows, /*runs=*/2, /*base_seed=*/5,
                         /*options=*/{}, /*threads=*/1);
  const std::vector<WindowSweepPoint> via_spec = fixed_window_sweep({.scase = scase,
                                                                     .attack =
                                                                         AttackKind::kBias,
                                                                     .windows = windows,
                                                                     .runs = 2,
                                                                     .base_seed = 5,
                                                                     .threads = 1})
                                                     .value();
  ASSERT_EQ(via_shim.size(), via_spec.size());
  for (std::size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(via_shim[i].window, via_spec[i].window);
    EXPECT_EQ(via_shim[i].fp_experiments, via_spec[i].fp_experiments);
    EXPECT_EQ(via_shim[i].fn_experiments, via_spec[i].fn_experiments);
  }
}

TEST(DeprecatedShims, ShimRethrowsSpecValidationErrors) {
  SimulatorCase broken = simulator_case("dc_motor");
  broken.tau = Vec{};
  EXPECT_THROW(run_cell(broken, AttackKind::kBias, 1, 0), std::invalid_argument);
  EXPECT_THROW(fixed_window_sweep(broken, AttackKind::kBias, {0}, 1, 0),
               std::invalid_argument);
}

}  // namespace
