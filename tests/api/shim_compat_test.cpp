// Compatibility contract of the deprecated positional shims: they must
// forward to the spec-based runners and return identical results.  This is
// the one translation unit allowed to call the deprecated surface — its
// target compiles with -Wno-deprecated-declarations while the rest of the
// tree promotes that warning to an error (see tests/api/CMakeLists.txt and
// the root CMakeLists).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

TEST(DeprecatedShims, PositionalRunCellMatchesSpecApi) {
  const SimulatorCase scase = simulator_case("dc_motor");
  MetricsOptions options;
  options.warmup = 100;

  const CellResult via_shim =
      run_cell(scase, AttackKind::kBias, /*runs=*/4, /*base_seed=*/3, options,
               /*threads=*/1);
  const CellResult via_spec = run_cell({.scase = scase,
                                        .attack = AttackKind::kBias,
                                        .runs = 4,
                                        .base_seed = 3,
                                        .metrics = options,
                                        .threads = 1})
                                  .value();
  EXPECT_EQ(via_shim, via_spec);
}

TEST(DeprecatedShims, PositionalSweepMatchesSpecApi) {
  const SimulatorCase scase = simulator_case("series_rlc");
  const std::vector<std::size_t> windows = {0, 20, 40};

  const std::vector<WindowSweepPoint> via_shim =
      fixed_window_sweep(scase, AttackKind::kBias, windows, /*runs=*/2, /*base_seed=*/5,
                         /*options=*/{}, /*threads=*/1);
  const std::vector<WindowSweepPoint> via_spec = fixed_window_sweep({.scase = scase,
                                                                     .attack =
                                                                         AttackKind::kBias,
                                                                     .windows = windows,
                                                                     .runs = 2,
                                                                     .base_seed = 5,
                                                                     .threads = 1})
                                                     .value();
  ASSERT_EQ(via_shim.size(), via_spec.size());
  for (std::size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(via_shim[i].window, via_spec[i].window);
    EXPECT_EQ(via_shim[i].fp_experiments, via_spec[i].fp_experiments);
    EXPECT_EQ(via_shim[i].fn_experiments, via_spec[i].fn_experiments);
  }
}

TEST(DeprecatedShims, DeadlineEstimatorIsTheBoxBackendBitwise) {
  // The historical estimator class survives as a deprecated constructor shim
  // over reach::BoxBackend; code still holding a DeadlineEstimator must see
  // the exact deadlines the redesigned factory produces.
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  BackendSpec spec = make_backend_spec(scase, /*init_radius=*/0.02, /*budget_steps=*/0);
  spec.kind = BackendKind::kBox;

  const reach::DeadlineEstimator legacy(spec.model, spec.u_range, spec.eps,
                                        spec.safe_set, spec.deadline);
  const auto modern = make_backend(spec).value();

  EXPECT_EQ(legacy.kind(), BackendKind::kBox);
  EXPECT_EQ(legacy.fingerprint(), modern->fingerprint());

  std::uint64_t rng = 0x2545f4914f6cdd1dULL;
  for (int s = 0; s < 64; ++s) {
    Vec x0 = scase.x0;
    for (std::size_t i = 0; i < x0.size(); ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      x0[i] += 2.0 * (static_cast<double>(static_cast<std::int64_t>(rng >> 11)) /
                          (1ULL << 52) -
                      1.0);
    }
    ASSERT_EQ(legacy.estimate(x0), modern->estimate(x0)) << "seed " << s;
  }
}

TEST(DeprecatedShims, ShimRethrowsSpecValidationErrors) {
  SimulatorCase broken = simulator_case("dc_motor");
  broken.tau = Vec{};
  EXPECT_THROW(run_cell(broken, AttackKind::kBias, 1, 0), std::invalid_argument);
  EXPECT_THROW(fixed_window_sweep(broken, AttackKind::kBias, {0}, 1, 0),
               std::invalid_argument);
}

}  // namespace
