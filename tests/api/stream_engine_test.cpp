// StreamEngine differential tests: the batched multi-stream engine must be
// bit-identical, stream for stream, to a standalone DetectionSystem run —
// across plants, attacks, seeds, shard counts, estimator sharing, and fault
// plans.  Plus the admission-control / drain state machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

/// Exact (bitwise for the doubles) equality of two RunMetrics.
void expect_metrics_equal(const RunMetrics& got, const RunMetrics& want,
                          const std::string& what) {
  EXPECT_EQ(got.fp_rate, want.fp_rate) << what;
  EXPECT_EQ(got.first_alarm_after_onset, want.first_alarm_after_onset) << what;
  EXPECT_EQ(got.detection_delay, want.detection_delay) << what;
  EXPECT_EQ(got.deadline_at_onset, want.deadline_at_onset) << what;
  EXPECT_EQ(got.fp_experiment, want.fp_experiment) << what;
  EXPECT_EQ(got.deadline_miss, want.deadline_miss) << what;
  EXPECT_EQ(got.false_negative, want.false_negative) << what;
  EXPECT_EQ(got.first_unsafe, want.first_unsafe) << what;
}

/// The engine's guard policy (mirrors run_cell): an unset post_attack_guard
/// defaults to the case's maximum window.
MetricsOptions guarded(const SimulatorCase& scase) {
  MetricsOptions options;
  options.post_attack_guard = scase.max_window;
  return options;
}

// The ISSUE's acceptance differential: >= 4 plants x 50 seeds, every drained
// stream's metrics (both strategies) bitwise equal to the standalone
// DetectionSystem path (run_cell_once), with attacks varied per seed and
// streams flowing through the bounded queue of a small sharded engine.
TEST(StreamEngineDifferential, FourPlantsFiftySeedsBitIdentical) {
  const char* kPlants[] = {"aircraft_pitch", "vehicle_turning", "series_rlc", "dc_motor"};
  const AttackKind kAttacks[] = {AttackKind::kBias, AttackKind::kDelay,
                                 AttackKind::kReplay, AttackKind::kFreeze};

  serve::StreamEngine engine({.threads = 4, .max_streams = 32, .queue_capacity = 1024});
  struct Expected {
    serve::StreamId id;
    CellRunOutcome reference;
    std::string what;
  };
  std::vector<Expected> expected;

  for (const char* key : kPlants) {
    const SimulatorCase scase = simulator_case(key);
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      const AttackKind attack = kAttacks[seed % 4];
      Result<serve::StreamId> id =
          engine.submit({.scase = scase, .attack = attack, .seed = seed});
      ASSERT_TRUE(id.is_ok()) << id.status().message();
      expected.push_back({id.value(),
                          run_cell_once(scase, attack, seed, guarded(scase)),
                          std::string(key) + " seed " + std::to_string(seed)});
    }
  }

  engine.run_to_completion();
  const serve::EngineSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.streams_admitted, expected.size());
  EXPECT_EQ(snap.streams_finished, expected.size());
  EXPECT_EQ(snap.running, 0u);
  EXPECT_EQ(snap.queued, 0u);

  for (const Expected& e : expected) {
    Result<serve::StreamResult> result = engine.drain(e.id);
    ASSERT_TRUE(result.is_ok()) << e.what;
    ASSERT_TRUE(result.value().status.is_ok()) << e.what;
    expect_metrics_equal(result.value().adaptive, e.reference.adaptive,
                         e.what + " (adaptive)");
    expect_metrics_equal(result.value().fixed, e.reference.fixed, e.what + " (fixed)");
  }
}

// Step-by-step differential: driving the engine one step_all() at a time,
// the per-stream status snapshot must match the standalone system's record
// at every step — deadline, window, both alarms.
TEST(StreamEngineDifferential, PerStepSnapshotMatchesStandalone) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystem standalone(scase, AttackKind::kBias, /*seed=*/7);

  serve::StreamEngine engine({.threads = 1});
  Result<serve::StreamId> id =
      engine.submit({.scase = scase, .attack = AttackKind::kBias, .seed = 7});
  ASSERT_TRUE(id.is_ok());

  for (std::size_t t = 0; t < scase.steps; ++t) {
    ASSERT_EQ(engine.step_all(), 1u) << "t=" << t;
    const StepRecord rec = standalone.step();
    Result<serve::StreamStatus> status = engine.status(id.value());
    ASSERT_TRUE(status.is_ok()) << "t=" << t;
    EXPECT_EQ(status.value().steps_done, t + 1);
    EXPECT_EQ(status.value().deadline, rec.deadline) << "t=" << t;
    EXPECT_EQ(status.value().window, rec.window) << "t=" << t;
    EXPECT_EQ(status.value().adaptive_alarm, rec.adaptive_alarm) << "t=" << t;
    EXPECT_EQ(status.value().fixed_alarm, rec.fixed_alarm) << "t=" << t;
  }
  EXPECT_EQ(engine.step_all(), 0u);  // finished streams take no more steps
  EXPECT_EQ(engine.status(id.value()).value().state, serve::StreamState::kFinished);
}

// Results must not depend on the shard/thread layout.
TEST(StreamEngineDifferential, ShardCountInvariant) {
  const SimulatorCase scase = simulator_case("dc_motor");
  std::vector<serve::StreamResult> per_layout;
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    serve::StreamEngine engine({.threads = threads});
    Result<serve::StreamId> id =
        engine.submit({.scase = scase, .attack = AttackKind::kReplay, .seed = 11});
    ASSERT_TRUE(id.is_ok());
    engine.run_to_completion();
    per_layout.push_back(engine.drain(id.value()).value());
  }
  expect_metrics_equal(per_layout[1].adaptive, per_layout[0].adaptive, "1 vs 3 shards");
  expect_metrics_equal(per_layout[1].fixed, per_layout[0].fixed, "1 vs 3 shards");
  EXPECT_EQ(per_layout[1].adaptive_evaluations, per_layout[0].adaptive_evaluations);
}

// Sharing the deadline estimator across a plant family must not change any
// result relative to per-stream construction.
TEST(StreamEngineDifferential, SharedEstimatorBitIdentical) {
  const SimulatorCase scase = simulator_case("series_rlc");
  std::vector<serve::StreamResult> per_mode;
  for (bool share : {false, true}) {
    serve::StreamEngine engine(
        {.threads = 2, .share_deadline_estimators = share});
    Result<serve::StreamId> id =
        engine.submit({.scase = scase, .attack = AttackKind::kBias, .seed = 3});
    ASSERT_TRUE(id.is_ok());
    engine.run_to_completion();
    per_mode.push_back(engine.drain(id.value()).value());
  }
  expect_metrics_equal(per_mode[1].adaptive, per_mode[0].adaptive, "shared estimator");
  expect_metrics_equal(per_mode[1].fixed, per_mode[0].fixed, "shared estimator");
}

// A stream carrying a fault plan must degrade exactly like the standalone
// pipeline under the same plan (same metrics, same final health state).
TEST(StreamEngineDifferential, FaultPlanStreamsMatchStandalone) {
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  DetectionSystemOptions options;
  options.fault_plan.add({.start = 120, .duration = 8, .kind = fault::FaultKind::kDropout})
      .add({.start = 200, .duration = 3, .kind = fault::FaultKind::kCorruptNaN});

  DetectionSystem standalone(scase, AttackKind::kBias, /*seed=*/5, options);
  StreamingMetrics reference(scase.attack_start, scase.attack_duration, guarded(scase));
  StepRecord last{};
  for (std::size_t t = 0; t < scase.steps; ++t) {
    last = standalone.step();
    reference.observe(last);
  }

  serve::StreamEngine engine({.threads = 2});
  Result<serve::StreamId> id = engine.submit(
      {.scase = scase, .attack = AttackKind::kBias, .seed = 5, .options = options});
  ASSERT_TRUE(id.is_ok());
  engine.run_to_completion();
  const serve::StreamResult result = engine.drain(id.value()).value();

  expect_metrics_equal(result.adaptive, reference.finish(Strategy::kAdaptive), "adaptive");
  expect_metrics_equal(result.fixed, reference.finish(Strategy::kFixed), "fixed");
  EXPECT_EQ(result.final_health, last.health);
}

// --- Admission control and the drain state machine. -----------------------

TEST(StreamEngineAdmission, BackpressureWhenRunningAndQueueFull) {
  const SimulatorCase scase = simulator_case("dc_motor");
  serve::StreamEngine engine({.threads = 1, .max_streams = 2, .queue_capacity = 1});
  const StreamSpec spec{.scase = scase, .attack = AttackKind::kBias, .seed = 1};

  ASSERT_TRUE(engine.submit(spec).is_ok());  // running slot 1
  ASSERT_TRUE(engine.submit(spec).is_ok());  // running slot 2
  ASSERT_TRUE(engine.submit(spec).is_ok());  // queued
  Result<serve::StreamId> rejected = engine.submit(spec);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kBudgetExceeded);

  const serve::EngineSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.running, 2u);
  EXPECT_EQ(snap.queued, 1u);
  EXPECT_EQ(snap.streams_rejected, 1u);

  // Capacity frees up once streams finish: the queued stream is admitted and
  // every accepted stream completes.
  engine.run_to_completion();
  EXPECT_EQ(engine.snapshot().streams_finished, 3u);
}

TEST(StreamEngineAdmission, InvalidSpecsRejectedUpFront) {
  SimulatorCase scase = simulator_case("dc_motor");
  serve::StreamEngine engine({.threads = 1});

  SimulatorCase broken = scase;
  broken.tau = Vec{};  // dimension mismatch: fails SimulatorCase::check()
  EXPECT_EQ(engine.submit({.scase = broken, .attack = AttackKind::kBias, .seed = 1})
                .status()
                .code(),
            StatusCode::kInvalidInput);

  // Attack onset after the (shortened) run is rejected, not silently run.
  EXPECT_EQ(engine.submit({.scase = scase,
                           .attack = AttackKind::kBias,
                           .seed = 1,
                           .steps = scase.attack_start})
                .status()
                .code(),
            StatusCode::kInvalidInput);
  EXPECT_EQ(engine.snapshot().streams_admitted, 0u);
}

TEST(StreamEngineAdmission, DrainStateMachine) {
  const SimulatorCase scase = simulator_case("dc_motor");
  serve::StreamEngine engine({.threads = 1, .max_streams = 1, .queue_capacity = 4});
  const StreamSpec spec{.scase = scase, .attack = AttackKind::kNone, .seed = 9};

  EXPECT_EQ(engine.drain(42).status().code(), StatusCode::kOutOfRange);

  const serve::StreamId running = engine.submit(spec).value();
  const serve::StreamId queued = engine.submit(spec).value();
  engine.step_all();  // both in flight now; neither finished
  EXPECT_EQ(engine.drain(running).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.drain(queued).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.status(running).value().state, serve::StreamState::kRunning);
  EXPECT_EQ(engine.status(queued).value().state, serve::StreamState::kQueued);

  engine.run_to_completion();
  EXPECT_TRUE(engine.drain(running).is_ok());
  // A drained stream is gone; draining again is an unknown id.
  EXPECT_EQ(engine.drain(running).status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(engine.drain(queued).is_ok());
}

}  // namespace
