// StreamingMetrics — the one-pass, trace-free scorer StreamEngine uses —
// must produce a RunMetrics bitwise equal to compute_metrics over the
// materialized trace, for both strategies and across metric options.
#include <gtest/gtest.h>

#include <stdexcept>

#include "awd.hpp"

namespace {

using namespace awd;

void expect_metrics_equal(const RunMetrics& got, const RunMetrics& want) {
  EXPECT_EQ(got.fp_rate, want.fp_rate);
  EXPECT_EQ(got.first_alarm_after_onset, want.first_alarm_after_onset);
  EXPECT_EQ(got.detection_delay, want.detection_delay);
  EXPECT_EQ(got.deadline_at_onset, want.deadline_at_onset);
  EXPECT_EQ(got.fp_experiment, want.fp_experiment);
  EXPECT_EQ(got.deadline_miss, want.deadline_miss);
  EXPECT_EQ(got.false_negative, want.false_negative);
  EXPECT_EQ(got.first_unsafe, want.first_unsafe);
}

TEST(StreamingMetrics, BitIdenticalToComputeMetricsOnRealTraces) {
  const MetricsOptions kVariants[] = {
      {},                                                        // defaults
      {.fp_threshold = 0.01, .warmup = 100},                     // Table 2 options
      {.warmup = 50, .post_attack_guard = 40},                   // engine guard policy
  };
  for (const char* key : {"dc_motor", "vehicle_turning"}) {
    const SimulatorCase scase = simulator_case(key);
    for (const MetricsOptions& options : kVariants) {
      DetectionSystem system(scase, AttackKind::kBias, /*seed=*/17);
      const Trace trace = system.run();

      StreamingMetrics streaming(scase.attack_start, scase.attack_duration, options);
      for (std::size_t t = 0; t < trace.size(); ++t) streaming.observe(trace[t]);
      ASSERT_EQ(streaming.steps(), trace.size());

      for (Strategy strategy : {Strategy::kAdaptive, Strategy::kFixed}) {
        SCOPED_TRACE(std::string(key) + (strategy == Strategy::kAdaptive ? " adaptive"
                                                                         : " fixed"));
        expect_metrics_equal(
            streaming.finish(strategy),
            compute_metrics(trace, scase.attack_start, scase.attack_duration, strategy,
                            options));
      }
    }
  }
}

TEST(StreamingMetrics, FinishBeforeOnsetThrowsLikeComputeMetrics) {
  const SimulatorCase scase = simulator_case("dc_motor");
  StreamingMetrics streaming(scase.attack_start, scase.attack_duration);
  DetectionSystem system(scase, AttackKind::kBias, /*seed=*/1);
  // Observe fewer steps than the onset: the run never reached the attack.
  for (std::size_t t = 0; t < scase.attack_start; ++t) streaming.observe(system.step());
  EXPECT_THROW(static_cast<void>(streaming.finish(Strategy::kAdaptive)),
               std::invalid_argument);
}

}  // namespace
