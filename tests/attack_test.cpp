// Unit tests for the sensor attack injectors.
#include "attack/attack.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::attack {
namespace {

std::vector<Vec> make_history(std::size_t n) {
  std::vector<Vec> h;
  for (std::size_t t = 0; t < n; ++t) h.push_back(Vec{static_cast<double>(t)});
  return h;
}

TEST(AttackWindow, ActiveRange) {
  const AttackWindow w{10, 5};
  EXPECT_FALSE(w.active(9));
  EXPECT_TRUE(w.active(10));
  EXPECT_TRUE(w.active(14));
  EXPECT_FALSE(w.active(15));
  EXPECT_EQ(w.end(), 15u);
}

TEST(NoAttack, PassesThrough) {
  const NoAttack a;
  const Vec clean{1.0, 2.0};
  EXPECT_EQ(a.apply(5, clean, {}), clean);
  EXPECT_FALSE(a.active(0));
  EXPECT_EQ(a.name(), "none");
}

TEST(BiasAttack, AddsOffsetOnlyWhileActive) {
  const BiasAttack a({10, 5}, Vec{0.5});
  const Vec clean{1.0};
  EXPECT_EQ(a.apply(9, clean, {})[0], 1.0);
  EXPECT_EQ(a.apply(10, clean, {})[0], 1.5);
  EXPECT_EQ(a.apply(14, clean, {})[0], 1.5);
  EXPECT_EQ(a.apply(15, clean, {})[0], 1.0);
  EXPECT_EQ(a.start(), 10u);
  EXPECT_EQ(a.name(), "bias");
}

TEST(BiasAttack, ZeroDurationThrows) {
  EXPECT_THROW(BiasAttack({10, 0}, Vec{1.0}), std::invalid_argument);
}

TEST(DelayAttack, ReportsLaggedMeasurement) {
  const DelayAttack a({10, 5}, 3);
  const auto history = make_history(20);
  const Vec clean{99.0};
  EXPECT_EQ(a.apply(12, clean, history)[0], 9.0);  // t - lag = 9
  EXPECT_EQ(a.apply(9, clean, history)[0], 99.0);  // inactive
}

TEST(DelayAttack, ClampsBeforeStreamStart) {
  const DelayAttack a({1, 5}, 10);
  const auto history = make_history(3);
  EXPECT_EQ(a.apply(2, Vec{99.0}, history)[0], 0.0);  // clamps to history[0]
}

TEST(DelayAttack, EmptyHistoryFallsBackToClean) {
  const DelayAttack a({0, 5}, 2);
  EXPECT_EQ(a.apply(0, Vec{42.0}, {})[0], 42.0);
}

TEST(DelayAttack, Validation) {
  EXPECT_THROW(DelayAttack({0, 0}, 1), std::invalid_argument);
  EXPECT_THROW(DelayAttack({0, 5}, 0), std::invalid_argument);
}

TEST(ReplayAttack, ReplaysRecordedSegment) {
  const ReplayAttack a({10, 5}, 2);  // replays steps 2..6 during 10..14
  const auto history = make_history(20);
  EXPECT_EQ(a.apply(10, Vec{99.0}, history)[0], 2.0);
  EXPECT_EQ(a.apply(13, Vec{99.0}, history)[0], 5.0);
  EXPECT_EQ(a.apply(15, Vec{99.0}, history)[0], 99.0);  // over
}

TEST(ReplayAttack, RejectsOverlappingRecordSegment) {
  // record [8, 13) overlaps attack start 10.
  EXPECT_THROW(ReplayAttack({10, 5}, 8), std::invalid_argument);
  EXPECT_NO_THROW(ReplayAttack({10, 5}, 5));
}

TEST(RampAttack, GrowsLinearly) {
  const RampAttack a({10, 10}, Vec{0.1});
  const Vec clean{0.0};
  EXPECT_NEAR(a.apply(10, clean, {})[0], 0.1, 1e-12);
  EXPECT_NEAR(a.apply(14, clean, {})[0], 0.5, 1e-12);
  EXPECT_EQ(a.apply(9, clean, {})[0], 0.0);
}

TEST(RampAttack, ZeroDurationThrows) {
  EXPECT_THROW(RampAttack({0, 0}, Vec{0.1}), std::invalid_argument);
}

TEST(FreezeAttack, RepeatsLastCleanMeasurement) {
  const FreezeAttack a({10, 5});
  const auto history = make_history(20);
  EXPECT_EQ(a.apply(10, Vec{99.0}, history)[0], 9.0);  // frozen at t=9
  EXPECT_EQ(a.apply(14, Vec{99.0}, history)[0], 9.0);  // still frozen
  EXPECT_EQ(a.apply(15, Vec{99.0}, history)[0], 99.0);  // over
  EXPECT_EQ(a.name(), "freeze");
}

TEST(FreezeAttack, NoHistoryFallsBackToClean) {
  const FreezeAttack a({0, 5});
  EXPECT_EQ(a.apply(0, Vec{42.0}, {})[0], 42.0);
  const FreezeAttack b({3, 5});
  EXPECT_EQ(b.apply(3, Vec{42.0}, {})[0], 42.0);
}

TEST(FreezeAttack, ZeroDurationThrows) {
  EXPECT_THROW(FreezeAttack({0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace awd::attack
