// Chaos suite: the detection pipeline under deterministic fault injection.
//
// Runs Table-2-style cells under scripted and seeded-random fault plans and
// asserts the graceful-degradation contract:
//   * no crash — every scenario runs to completion,
//   * no non-finite value in any emitted StepRecord field,
//   * bit-identical traces for identical (seed, fault plan),
//   * HealthMonitor reports the expected NOMINAL/DEGRADED/FAILSAFE
//     transitions for each fault shape,
//   * with an empty fault plan the trace — and therefore every Table-2
//     metric derived from it — is bit-identical to the default (unhardened
//     configuration) pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ckpt.hpp"
#include "core/detection_system.hpp"
#include "core/metrics.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/forensics.hpp"
#include "serve/stream_engine.hpp"

namespace awd {
namespace {

using core::AttackKind;
using core::DetectionSystem;
using core::DetectionSystemOptions;
using fault::FaultKind;
using fault::FaultPlan;
using fault::HealthState;
using sim::StepRecord;
using sim::Trace;

// ------------------------------------------------------------------ helpers

void expect_all_finite(const StepRecord& rec, const std::string& context) {
  const linalg::Vec* fields[] = {&rec.true_state, &rec.measurement, &rec.estimate,
                                 &rec.predicted,  &rec.residual,    &rec.control,
                                 &rec.commanded};
  const char* names[] = {"true_state", "measurement", "estimate", "predicted",
                         "residual",   "control",     "commanded"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(fields[i]->is_finite())
        << context << ": non-finite " << names[i] << " at t=" << rec.t;
  }
}

bool records_identical(const StepRecord& a, const StepRecord& b) {
  return a.t == b.t && a.true_state == b.true_state && a.measurement == b.measurement &&
         a.estimate == b.estimate && a.predicted == b.predicted &&
         a.residual == b.residual && a.control == b.control &&
         a.commanded == b.commanded && a.attack_active == b.attack_active &&
         a.deadline == b.deadline && a.window == b.window &&
         a.adaptive_alarm == b.adaptive_alarm && a.fixed_alarm == b.fixed_alarm &&
         a.unsafe == b.unsafe && a.fault == b.fault &&
         a.sample_missing == b.sample_missing &&
         a.estimate_fallback == b.estimate_fallback &&
         a.residual_quarantined == b.residual_quarantined &&
         a.deadline_fallback == b.deadline_fallback && a.health == b.health;
}

void expect_traces_identical(const Trace& a, const Trace& b, const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(records_identical(a[i], b[i])) << context << ": diverges at t=" << i;
  }
}

/// One chaos scenario: a plant/attack cell plus a fault plan.
struct Scenario {
  std::string name;
  std::string plant;
  AttackKind attack = AttackKind::kNone;
  FaultPlan plan;
  /// Highest health state the run must reach.
  HealthState expect_at_least = HealthState::kDegraded;
  /// Expect full recovery (NOMINAL) by the end of the run.
  bool expect_recovered = true;
};

std::vector<Scenario> chaos_scenarios() {
  std::vector<Scenario> scenarios;

  auto single = [](FaultKind kind, std::size_t t) {
    return FaultPlan{}.add({t, 1, kind});
  };
  auto burst = [](FaultKind kind, std::size_t t, std::size_t len) {
    return FaultPlan{}.add({t, len, kind});
  };

  // Scripted scenarios over three plants × the full fault taxonomy.
  scenarios.push_back({"single_dropout", "aircraft_pitch", AttackKind::kNone,
                       single(FaultKind::kDropout, 100)});
  scenarios.push_back({"burst_loss_failsafe", "aircraft_pitch", AttackKind::kNone,
                       burst(FaultKind::kDropout, 100, 8), HealthState::kFailsafe});
  scenarios.push_back({"nan_corruption", "vehicle_turning", AttackKind::kNone,
                       single(FaultKind::kCorruptNaN, 120)});
  scenarios.push_back({"nan_burst_failsafe", "vehicle_turning", AttackKind::kNone,
                       burst(FaultKind::kCorruptNaN, 120, 6), HealthState::kFailsafe});
  scenarios.push_back({"inf_corruption", "series_rlc", AttackKind::kNone,
                       single(FaultKind::kCorruptInf, 90)});
  scenarios.push_back({"stuck_sensor", "series_rlc", AttackKind::kNone,
                       burst(FaultKind::kStuckAtLast, 110, 4)});
  scenarios.push_back({"deadline_budget", "aircraft_pitch", AttackKind::kNone,
                       burst(FaultKind::kDeadlineBudget, 130, 3)});
  scenarios.push_back({"dropout_at_startup", "vehicle_turning", AttackKind::kNone,
                       single(FaultKind::kDropout, 0)});
  scenarios.push_back({"stuck_at_startup", "dc_motor", AttackKind::kNone,
                       burst(FaultKind::kStuckAtLast, 0, 3)});

  // Faults layered over an active sensor attack (the severe regime).
  scenarios.push_back({"nan_during_bias_attack", "aircraft_pitch", AttackKind::kBias,
                       burst(FaultKind::kCorruptNaN, 170, 3), HealthState::kDegraded,
                       false});
  scenarios.push_back({"burst_during_ramp_attack", "dc_motor", AttackKind::kRamp,
                       burst(FaultKind::kDropout, 180, 8), HealthState::kFailsafe, false});

  // Mixed scripted plan: every fault kind in one run.
  FaultPlan mixed;
  mixed.add({60, 2, FaultKind::kDropout})
      .add({80, 1, FaultKind::kCorruptNaN})
      .add({100, 1, FaultKind::kCorruptInf})
      .add({120, 3, FaultKind::kStuckAtLast})
      .add({140, 2, FaultKind::kDeadlineBudget});
  scenarios.push_back({"mixed_taxonomy", "series_rlc", AttackKind::kNone, mixed});

  // Seeded-random background plans at increasing severity.
  // Random plans may fault arbitrarily close to the end of the run, so
  // none of them asserts recovery.
  scenarios.push_back({"random_sparse", "aircraft_pitch", AttackKind::kNone,
                       FaultPlan::random(42, 300, {.fault_rate = 0.01}),
                       HealthState::kDegraded, false});
  scenarios.push_back({"random_moderate", "vehicle_turning", AttackKind::kFreeze,
                       FaultPlan::random(7, 300, {.fault_rate = 0.05}),
                       HealthState::kDegraded, false});
  scenarios.push_back({"random_severe", "dc_motor", AttackKind::kNone,
                       FaultPlan::random(99, 300, {.fault_rate = 0.25, .max_burst = 8}),
                       HealthState::kFailsafe, false});

  return scenarios;
}

Trace run_scenario(const Scenario& s, std::uint64_t seed, std::size_t steps = 300) {
  DetectionSystemOptions opts;
  opts.fault_plan = s.plan;
  DetectionSystem system(core::simulator_case(s.plant), s.attack, seed, opts);
  return system.run(steps);
}

// ---------------------------------------------------------------- the suite

TEST(Chaos, AtLeastTwelveScenariosAcrossThreePlants) {
  const auto scenarios = chaos_scenarios();
  EXPECT_GE(scenarios.size(), 12u);
  std::vector<std::string> plants;
  for (const auto& s : scenarios) {
    if (std::find(plants.begin(), plants.end(), s.plant) == plants.end()) {
      plants.push_back(s.plant);
    }
  }
  EXPECT_GE(plants.size(), 3u);
}

TEST(Chaos, AllScenariosCompleteWithFiniteRecords) {
  for (const auto& s : chaos_scenarios()) {
    SCOPED_TRACE(s.name);
    Trace trace;
    ASSERT_NO_THROW(trace = run_scenario(s, 1)) << s.name;
    ASSERT_EQ(trace.size(), 300u);
    for (const StepRecord& rec : trace) expect_all_finite(rec, s.name);
  }
}

TEST(Chaos, HealthReportsExpectedTransitions) {
  for (const auto& s : chaos_scenarios()) {
    SCOPED_TRACE(s.name);
    const Trace trace = run_scenario(s, 1);
    HealthState peak = HealthState::kNominal;
    for (const StepRecord& rec : trace) {
      if (rec.health > peak) peak = rec.health;
    }
    EXPECT_GE(peak, s.expect_at_least) << s.name;
    if (s.expect_recovered) {
      EXPECT_EQ(trace.back().health, HealthState::kNominal)
          << s.name << ": did not recover by the end of the run";
    }
  }
}

TEST(Chaos, HealthNeverSkipsDegradedOnTheWayUp) {
  // NOMINAL must never jump straight to FAILSAFE within one step, and every
  // recovery must pass through DEGRADED.
  for (const auto& s : chaos_scenarios()) {
    SCOPED_TRACE(s.name);
    const Trace trace = run_scenario(s, 3);
    HealthState prev = HealthState::kNominal;
    for (const StepRecord& rec : trace) {
      if (prev == HealthState::kNominal) {
        EXPECT_NE(rec.health, HealthState::kFailsafe) << s.name << " t=" << rec.t;
      }
      if (prev == HealthState::kFailsafe) {
        EXPECT_NE(rec.health, HealthState::kNominal) << s.name << " t=" << rec.t;
      }
      prev = rec.health;
    }
  }
}

TEST(Chaos, FaultCountersMatchThePlan) {
  // A scripted 8-step dropout burst must be counted exactly 8 times.
  Scenario s{"burst_count", "aircraft_pitch", AttackKind::kNone,
             FaultPlan{}.add({100, 8, FaultKind::kDropout})};
  DetectionSystemOptions opts;
  opts.fault_plan = s.plan;
  DetectionSystem system(core::simulator_case(s.plant), s.attack, 1, opts);
  (void)system.run(300);
  ASSERT_NE(system.faults(), nullptr);
  EXPECT_EQ(system.faults()->counters().count(FaultKind::kDropout), 8u);
  EXPECT_EQ(system.health().fault_count(FaultKind::kDropout), 8u);
  EXPECT_GE(system.health().degraded_steps(), 8u);

  // Injected deadline-budget faults must be attributed too: both in the
  // monitor's per-kind counter and on the step records themselves.
  DetectionSystemOptions dopts;
  dopts.fault_plan = FaultPlan{}.add({100, 3, FaultKind::kDeadlineBudget});
  DetectionSystem dsystem(core::simulator_case(s.plant), s.attack, 1, dopts);
  const Trace dtrace = dsystem.run(300);
  EXPECT_EQ(dsystem.health().fault_count(FaultKind::kDeadlineBudget), 3u);
  for (std::size_t t = 100; t < 103; ++t) {
    EXPECT_EQ(dtrace[t].fault, FaultKind::kDeadlineBudget) << t;
    EXPECT_TRUE(dtrace[t].deadline_fallback) << t;
  }
}

TEST(Chaos, IdenticalSeedAndPlanGiveBitIdenticalTraces) {
  for (const auto& s : chaos_scenarios()) {
    SCOPED_TRACE(s.name);
    const Trace a = run_scenario(s, 17);
    const Trace b = run_scenario(s, 17);
    expect_traces_identical(a, b, s.name);
  }
}

TEST(Chaos, DeterminismAcrossAllFivePlants) {
  // Same (seed, fault plan) ⇒ identical Trace across two independent
  // DetectionSystem runs, for every Table-1 plant.
  for (const char* plant : {"aircraft_pitch", "vehicle_turning", "series_rlc",
                            "dc_motor", "quadrotor"}) {
    SCOPED_TRACE(plant);
    const FaultPlan plan = FaultPlan::random(5, 250, {.fault_rate = 0.08});
    DetectionSystemOptions opts;
    opts.fault_plan = plan;
    DetectionSystem first(core::simulator_case(plant), AttackKind::kBias, 23, opts);
    DetectionSystem second(core::simulator_case(plant), AttackKind::kBias, 23, opts);
    expect_traces_identical(first.run(250), second.run(250), plant);
  }
}

TEST(Chaos, EmptyPlanIsBitIdenticalToDefaultPipeline) {
  // The hardening must be invisible when nothing is injected: an empty
  // FaultPlan produces the exact trace — hence the exact Table-2 metrics —
  // of a DetectionSystem constructed with default options.
  for (const char* plant : {"aircraft_pitch", "vehicle_turning", "series_rlc"}) {
    for (const AttackKind attack : {AttackKind::kNone, AttackKind::kBias}) {
      SCOPED_TRACE(plant);
      DetectionSystem baseline(core::simulator_case(plant), attack, 11);
      DetectionSystemOptions opts;
      opts.fault_plan = FaultPlan{};  // explicit empty plan
      DetectionSystem hardened(core::simulator_case(plant), attack, 11, opts);
      const Trace base_trace = baseline.run(300);
      const Trace hard_trace = hardened.run(300);
      expect_traces_identical(base_trace, hard_trace, plant);

      // Spot-check the derived Table-2 metrics agree bit-for-bit too.
      if (attack == AttackKind::kBias) {
        const core::SimulatorCase scase = core::simulator_case(plant);
        const core::RunMetrics a =
            core::compute_metrics(base_trace, scase.attack_start, scase.attack_duration,
                                  core::Strategy::kAdaptive);
        const core::RunMetrics b =
            core::compute_metrics(hard_trace, scase.attack_start, scase.attack_duration,
                                  core::Strategy::kAdaptive);
        EXPECT_EQ(a.fp_rate, b.fp_rate);
        EXPECT_EQ(a.detection_delay, b.detection_delay);
        EXPECT_EQ(a.deadline_miss, b.deadline_miss);
        EXPECT_EQ(a.false_negative, b.false_negative);
      }
      // No fault plan: the injector is never constructed and health stays
      // NOMINAL throughout.
      EXPECT_EQ(hardened.faults(), nullptr);
      for (const StepRecord& rec : hard_trace) {
        EXPECT_EQ(rec.health, HealthState::kNominal);
        EXPECT_EQ(rec.fault, FaultKind::kNone);
      }
    }
  }
}

TEST(Chaos, RealDeadlineBudgetTriggersDecayFallback) {
  // A budget too small to resolve the search forces the decay fallback on
  // every step once seeds exist: the deadline must decay monotonically to
  // the floor of 1 and never read 0 or above w_m.
  DetectionSystemOptions opts;
  opts.deadline_budget = 2;  // far below the w_m = 40 the search may need
  DetectionSystem system(core::simulator_case("aircraft_pitch"), AttackKind::kNone, 1,
                         opts);
  const Trace trace = system.run(200);
  bool saw_fallback = false;
  for (const StepRecord& rec : trace) {
    expect_all_finite(rec, "real_budget");
    if (rec.deadline_fallback) {
      saw_fallback = true;
      EXPECT_GE(rec.deadline, 1u);
      EXPECT_LE(rec.deadline, 40u);
    }
  }
  EXPECT_TRUE(saw_fallback);
  EXPECT_EQ(trace.back().deadline, 1u);  // decayed to the most-alert floor
}

TEST(Chaos, DropoutHoldsLastValueAndRecoversCleanly) {
  // During a burst the estimate must freeze at the last good value; the
  // loop keeps controlling and the stream stays contiguous afterwards.
  FaultPlan plan;
  plan.add({50, 5, FaultKind::kDropout});
  DetectionSystemOptions opts;
  opts.fault_plan = plan;
  DetectionSystem system(core::simulator_case("vehicle_turning"), AttackKind::kNone, 9,
                         opts);
  const Trace trace = system.run(120);
  const linalg::Vec held = trace[49].estimate;
  for (std::size_t t = 50; t < 55; ++t) {
    EXPECT_TRUE(trace[t].sample_missing) << t;
    EXPECT_TRUE(trace[t].estimate_fallback) << t;
    EXPECT_EQ(trace[t].estimate, held) << t;
  }
  EXPECT_FALSE(trace[55].sample_missing);
  EXPECT_FALSE(trace[55].estimate_fallback);
}

TEST(Chaos, CorruptionNeverReachesEmittedMeasurement) {
  FaultPlan plan;
  plan.add({40, 3, FaultKind::kCorruptNaN});
  plan.add({60, 3, FaultKind::kCorruptInf});
  DetectionSystemOptions opts;
  opts.fault_plan = plan;
  DetectionSystem system(core::simulator_case("series_rlc"), AttackKind::kNone, 5, opts);
  const Trace trace = system.run(100);
  for (const StepRecord& rec : trace) {
    expect_all_finite(rec, "corruption");
    if (rec.t >= 40 && rec.t < 43) EXPECT_EQ(rec.fault, FaultKind::kCorruptNaN);
    if (rec.t >= 60 && rec.t < 63) EXPECT_EQ(rec.fault, FaultKind::kCorruptInf);
  }
}

// ------------------------------------------------- checkpoint/recovery chaos

namespace {

/// Bitwise equality of two StreamResults (the engine-level analogue of
/// expect_traces_identical).
void expect_stream_results_identical(const serve::StreamResult& a,
                                     const serve::StreamResult& b,
                                     const std::string& context) {
  EXPECT_EQ(a.id, b.id) << context;
  EXPECT_EQ(a.status.code(), b.status.code()) << context;
  EXPECT_EQ(a.steps, b.steps) << context;
  EXPECT_EQ(a.final_health, b.final_health) << context;
  EXPECT_EQ(a.adaptive_evaluations, b.adaptive_evaluations) << context;
  const core::RunMetrics* got[] = {&a.adaptive, &a.fixed};
  const core::RunMetrics* want[] = {&b.adaptive, &b.fixed};
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(got[i]->fp_rate, want[i]->fp_rate) << context;
    EXPECT_EQ(got[i]->first_alarm_after_onset, want[i]->first_alarm_after_onset)
        << context;
    EXPECT_EQ(got[i]->detection_delay, want[i]->detection_delay) << context;
    EXPECT_EQ(got[i]->deadline_miss, want[i]->deadline_miss) << context;
    EXPECT_EQ(got[i]->false_negative, want[i]->false_negative) << context;
    EXPECT_EQ(got[i]->first_unsafe, want[i]->first_unsafe) << context;
  }
}

}  // namespace

// Crash mid-run, recover from the last durable snapshot.  The engine takes
// periodic snapshots to disk (write_file's tmp+rename keeps each one atomic);
// the process "dies" mid-attack with the newest on-disk snapshot corrupted by
// a simulated torn disk — recovery must reject it with a typed error, fall
// back to the previous generation, and still finish bit-identically to the
// uninterrupted run.
TEST(Chaos, CrashRecoveryFromLastDurableSnapshot) {
  const std::string newest = ::testing::TempDir() + "awd_chaos_ckpt.1.snap";
  const std::string older = ::testing::TempDir() + "awd_chaos_ckpt.0.snap";

  auto submit_pair = [](serve::StreamEngine& e) {
    std::vector<serve::StreamId> ids;
    FaultPlan plan;
    plan.add({160, 4, FaultKind::kDropout});  // faults inside the attack window
    serve::StreamSpec bias{.scase = core::simulator_case("aircraft_pitch"),
                           .attack = AttackKind::kBias,
                           .seed = 21};
    bias.options.fault_plan = plan;
    serve::StreamSpec freeze{.scase = core::simulator_case("series_rlc"),
                             .attack = AttackKind::kFreeze,
                             .seed = 22};
    ids.push_back(e.submit(bias).value());
    ids.push_back(e.submit(freeze).value());
    return ids;
  };

  // Uninterrupted reference.
  serve::StreamEngine reference({.threads = 1});
  const std::vector<serve::StreamId> ids = submit_pair(reference);
  reference.run_to_completion();

  // The doomed process: snapshot every 40 steps, die at t=175 (attack and
  // fault plan both active).
  {
    serve::StreamEngine doomed({.threads = 1});
    ASSERT_EQ(submit_pair(doomed), ids);
    for (int t = 1; t <= 175; ++t) {
      doomed.step_all();
      if (t % 40 == 0) {
        std::remove(older.c_str());
        std::rename(newest.c_str(), older.c_str());
        ASSERT_TRUE(
            core::ckpt::write_file(newest, doomed.checkpoint().value()).is_ok());
      }
    }
    // No clean shutdown: the engine object simply goes away.
  }

  // Simulated torn disk: the newest snapshot loses its tail.
  {
    core::Result<std::vector<std::uint8_t>> bytes = core::ckpt::read_file(newest);
    ASSERT_TRUE(bytes.is_ok());
    std::vector<std::uint8_t> torn = bytes.value();
    torn.resize(torn.size() / 2);
    ASSERT_TRUE(core::ckpt::write_file(newest, torn).is_ok());
  }

  // Recovery: newest generation rejected typed, older generation restores.
  serve::StreamEngine recovered({.threads = 2});
  bool restored = false;
  for (const std::string& path : {newest, older}) {
    core::Result<std::vector<std::uint8_t>> bytes = core::ckpt::read_file(path);
    if (!bytes.is_ok()) continue;
    const core::Status status = recovered.restore(bytes.value());
    if (status.is_ok()) {
      restored = true;
      break;
    }
    EXPECT_EQ(status.code(), core::StatusCode::kDataLoss) << path;
  }
  ASSERT_TRUE(restored);

  recovered.run_to_completion();
  for (serve::StreamId id : ids) {
    expect_stream_results_identical(recovered.drain(id).value(),
                                    reference.drain(id).value(),
                                    "recovered stream " + std::to_string(id));
  }
  std::remove(newest.c_str());
  std::remove(older.c_str());
}

// Checkpoint taken mid-fault-burst: the restored stream must come back in
// DEGRADED health (the monitor's streaks and counters travel in the
// snapshot), then recover to NOMINAL exactly as the uninterrupted run does.
TEST(Chaos, RestoreUnderActiveFaultPlanResumesDegraded) {
  FaultPlan plan;
  plan.add({100, 3, FaultKind::kDropout});
  serve::StreamSpec spec{.scase = core::simulator_case("vehicle_turning"),
                         .attack = AttackKind::kNone,
                         .seed = 31};
  spec.options.fault_plan = plan;

  serve::StreamEngine reference({.threads = 1});
  const serve::StreamId ref_id = reference.submit(spec).value();
  reference.run_to_completion();

  serve::StreamEngine engine({.threads = 1});
  const serve::StreamId id = engine.submit(spec).value();
  ASSERT_EQ(id, ref_id);
  for (int t = 0; t < 102; ++t) engine.step_all();  // inside the burst
  ASSERT_EQ(engine.status(id).value().health, HealthState::kDegraded);
  const std::vector<std::uint8_t> snap = engine.checkpoint().value();

  serve::StreamEngine restored({.threads = 1});
  ASSERT_TRUE(restored.restore(snap).is_ok());
  EXPECT_EQ(restored.status(id).value().health, HealthState::kDegraded)
      << "health state must survive the snapshot";
  EXPECT_EQ(restored.status(id).value().steps_done, 102u);

  restored.run_to_completion();
  const serve::StreamResult got = restored.drain(id).value();
  EXPECT_EQ(got.final_health, HealthState::kNominal)
      << "restored run must still recover after the burst ends";
  expect_stream_results_identical(got, reference.drain(id).value(),
                                  "restore under active fault plan");
}

// Elastic resharding while an attack is in progress and a fault plan is
// firing: rebalance() must be invisible in every drained result.
TEST(Chaos, RebalanceMidAttackIsInvisible) {
  auto submit_cells = [](serve::StreamEngine& e) {
    std::vector<serve::StreamId> ids;
    const AttackKind attacks[] = {AttackKind::kBias, AttackKind::kReplay,
                                  AttackKind::kFreeze};
    int i = 0;
    for (const char* plant : {"aircraft_pitch", "vehicle_turning", "series_rlc"}) {
      serve::StreamSpec spec{.scase = core::simulator_case(plant),
                             .attack = attacks[i++],
                             .seed = 41};
      spec.options.fault_plan = FaultPlan::random(13, 400, {.fault_rate = 0.02});
      ids.push_back(e.submit(spec).value());
    }
    return ids;
  };

  serve::StreamEngine reference({.threads = 2});
  const std::vector<serve::StreamId> ids = submit_cells(reference);
  reference.run_to_completion();

  serve::StreamEngine engine({.threads = 1});
  ASSERT_EQ(submit_cells(engine), ids);
  for (int t = 0; t < 170; ++t) engine.step_all();  // attack begins at 150
  ASSERT_TRUE(engine.rebalance(3).is_ok());  // reshard mid-attack
  engine.run_to_completion();

  for (serve::StreamId id : ids) {
    expect_stream_results_identical(engine.drain(id).value(),
                                    reference.drain(id).value(),
                                    "rebalance mid-attack stream " +
                                        std::to_string(id));
  }
}

// The crash-path body run inside the death-test child: arm the failure
// flush, serve an attacked stream past its alarm, then die mid-serve.
[[noreturn]] void crash_mid_serve(const std::string& dir) {
  obs::set_enabled(true);
  obs::install_failure_flush(dir);
  serve::StreamEngine engine(
      {.threads = 1, .flight_recorder_depth = 128, .forensics_dir = dir});
  serve::StreamSpec spec{.scase = core::simulator_case("aircraft_pitch"),
                         .attack = AttackKind::kBias,
                         .seed = 3};
  if (!engine.submit(spec).is_ok()) std::abort();
  for (int t = 0; t < 160; ++t) engine.step_all();  // past attack onset
  std::terminate();  // simulated crash mid-serve
}

// The crash path end to end: a process that dies mid-serve (std::terminate
// with install_failure_flush armed) must leave a readable postmortem behind
// — a flushed events.jsonl carrying the crash-flush marker, and .awdfr
// flight-recorder dumps that decode and replay in the surviving process.
TEST(Chaos, CrashFlushLeavesReadableForensics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // CI points AWD_TEST_FORENSICS_DIR into the build tree so the postmortem
  // artifacts (.awdfr dumps, events.jsonl) can be uploaded when a chaos-tier
  // run fails; locally the dump lands in the system temp directory.
  const char* artifact_dir = std::getenv("AWD_TEST_FORENSICS_DIR");
  const std::filesystem::path dir =
      artifact_dir != nullptr && artifact_dir[0] != '\0'
          ? std::filesystem::path(artifact_dir) / "crash_flush"
          : std::filesystem::temp_directory_path() / "awd_chaos_crash_flush";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EXPECT_DEATH(crash_mid_serve(dir.string()), "");

  // The child is dead; its artifacts must still tell the story.
  ASSERT_TRUE(std::filesystem::exists(dir / "events.jsonl"))
      << "failure flush did not write the event log";
  std::ifstream events_file(dir / "events.jsonl");
  std::stringstream events;
  events << events_file.rdbuf();
  EXPECT_NE(events.str().find("\"event\": \"crash_flush\""), std::string::npos);
  EXPECT_NE(events.str().find("\"event\": \"alarm\""), std::string::npos);

  std::size_t verified = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".awdfr") continue;
    const core::Result<std::vector<std::uint8_t>> bytes =
        core::ckpt::read_file(entry.path().string());
    ASSERT_TRUE(bytes.is_ok()) << entry.path();
    const core::Result<serve::ForensicsDump> dump = serve::decode_dump(bytes.value());
    ASSERT_TRUE(dump.is_ok()) << entry.path() << ": " << dump.status().message();
    const core::Result<serve::ReplayReport> replayed = serve::replay_dump(dump.value());
    ASSERT_TRUE(replayed.is_ok()) << entry.path();
    EXPECT_TRUE(replayed.value().verified())
        << entry.path() << ": " << replayed.value().mismatch;
    ++verified;
  }
  EXPECT_GE(verified, 1u) << "no decodable .awdfr dump survived the crash";
  // Keep the artifacts when CI asked for a stable directory (the upload
  // step collects them on failure); clean up the temp-dir fallback.
  if (artifact_dir == nullptr || artifact_dir[0] == '\0') {
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace awd
