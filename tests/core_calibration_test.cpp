// Tests for the §4.3 offline profiling procedures.
#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/detection_system.hpp"
#include "core/metrics.hpp"

namespace awd::core {
namespace {

TEST(Calibration, ThresholdDimensionsAndPositivity) {
  const SimulatorCase scase = simulator_case("series_rlc");
  ThresholdCalibrationOptions opts;
  opts.runs = 3;
  const Vec tau = calibrate_threshold(scase, 5, opts);
  ASSERT_EQ(tau.size(), 2u);
  EXPECT_GT(tau[0], 0.0);
  EXPECT_GT(tau[1], 0.0);
  // Coupled dimensions with different noise floors get different
  // thresholds, as in Table 1's RLC row (0.04 vs 0.01).
  EXPECT_NE(tau[0], tau[1]);
}

TEST(Calibration, HigherQuantileGivesHigherThreshold) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  ThresholdCalibrationOptions lo, hi;
  lo.runs = hi.runs = 3;
  lo.quantile = 0.9;
  hi.quantile = 0.999;
  EXPECT_LT(calibrate_threshold(scase, 5, lo)[0], calibrate_threshold(scase, 5, hi)[0]);
}

TEST(Calibration, MarginScalesLinearly) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  ThresholdCalibrationOptions a, b;
  a.runs = b.runs = 2;
  b.margin = 2.0;
  EXPECT_NEAR(2.0 * calibrate_threshold(scase, 5, a)[0],
              calibrate_threshold(scase, 5, b)[0], 1e-12);
}

TEST(Calibration, CalibratedThresholdKeepsCleanFpLow) {
  // A 99.5 % quantile threshold with margin should make the instantaneous
  // (window-0) detector quiet on clean data.
  const SimulatorCase base = simulator_case("vehicle_turning");
  ThresholdCalibrationOptions opts;
  opts.runs = 5;
  opts.quantile = 0.995;
  opts.margin = 1.2;
  SimulatorCase scase = base;
  scase.tau = calibrate_threshold(base, 5, opts);

  DetectionSystem system(scase, AttackKind::kNone, 99);
  const sim::Trace trace = system.run();
  const double fp =
      false_positive_rate(trace, trace.size(), trace.size(), Strategy::kAdaptive, 50);
  EXPECT_LT(fp, 0.02);
}

TEST(Calibration, ThresholdValidation) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  ThresholdCalibrationOptions opts;
  opts.quantile = 0.0;
  EXPECT_THROW((void)calibrate_threshold(scase, 1, opts), std::invalid_argument);
  opts.quantile = 0.9;
  opts.runs = 0;
  EXPECT_THROW((void)calibrate_threshold(scase, 1, opts), std::invalid_argument);
}

TEST(Calibration, MaxWindowProfileRespectsTolerance) {
  SimulatorCase scase = simulator_case("aircraft_pitch");
  scase.attack_duration = 15;
  MaxWindowOptions opts;
  opts.runs = 20;
  opts.window_limit = 100;
  opts.window_stride = 10;
  opts.fn_tolerance = 2;
  opts.metrics.warmup = 100;
  const MaxWindowProfile profile = profile_max_window(scase, AttackKind::kBias, 11, opts);

  ASSERT_FALSE(profile.sweep.empty());
  // The chosen w_m itself satisfies the tolerance.
  for (const auto& p : profile.sweep) {
    if (p.window == profile.max_window) {
      EXPECT_LE(p.fn_experiments, opts.fn_tolerance);
    }
  }
  // And it is the largest such window in the sweep.
  for (const auto& p : profile.sweep) {
    if (p.window > profile.max_window) {
      EXPECT_GT(p.fn_experiments, opts.fn_tolerance);
    }
  }
}

TEST(Calibration, StricterToleranceGivesSmallerOrEqualWindow) {
  SimulatorCase scase = simulator_case("aircraft_pitch");
  scase.attack_duration = 15;
  MaxWindowOptions loose, strict;
  loose.runs = strict.runs = 15;
  loose.window_stride = strict.window_stride = 10;
  loose.metrics.warmup = strict.metrics.warmup = 100;
  loose.fn_tolerance = 10;
  strict.fn_tolerance = 0;
  const auto wl = profile_max_window(scase, AttackKind::kBias, 11, loose).max_window;
  const auto ws = profile_max_window(scase, AttackKind::kBias, 11, strict).max_window;
  EXPECT_LE(ws, wl);
}

}  // namespace
}  // namespace awd::core
