// Unit tests for the snapshot codec (core/ckpt.hpp) and the configuration
// codecs layered on it (core/ckpt_io.hpp): primitive round-trips including
// the IEEE-754 specials, Reader bounds-checking and error latching, the
// SnapshotBuilder/SnapshotView framing, the bit-flip-every-header-field
// robustness sweep the ISSUE demands, prefix-truncation sweeps, the atomic
// file helpers, and spec-codec byte-identity (which the engine fingerprint
// relies on).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/ckpt.hpp"
#include "core/ckpt_io.hpp"
#include "core/config.hpp"
#include "fault/fault.hpp"

namespace {

using namespace awd;
using namespace awd::core;

// --- Writer / Reader primitives --------------------------------------------

TEST(CkptWriterReader, PrimitivesRoundTrip) {
  ckpt::Writer w;
  w.u8(0xAB);
  w.b(true);
  w.b(false);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1.5);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.str("adaptive window");
  w.str("");
  linalg::Vec v(3);
  v[0] = 1.0;
  v[1] = -0.0;
  v[2] = 3.25;
  w.vec(v);
  linalg::Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = -7.0;
  w.mat(m);
  w.opt_u64(std::nullopt);
  w.opt_u64(std::optional<std::size_t>{42});
  w.opt_vec(std::nullopt);
  w.opt_vec(v);

  ckpt::Reader r(w.data().data(), w.size());
  std::uint8_t u8v = 0;
  bool b1 = false;
  bool b2 = true;
  std::uint32_t u32v = 0;
  std::uint64_t u64v = 0;
  double d = 0.0;
  EXPECT_TRUE(r.u8(u8v));
  EXPECT_EQ(u8v, 0xAB);
  EXPECT_TRUE(r.b(b1));
  EXPECT_TRUE(b1);
  EXPECT_TRUE(r.b(b2));
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.u32(u32v));
  EXPECT_EQ(u32v, 0xDEADBEEFu);
  EXPECT_TRUE(r.u64(u64v));
  EXPECT_EQ(u64v, 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.f64(d));
  EXPECT_EQ(d, -1.5);
  EXPECT_TRUE(r.f64(d));
  EXPECT_EQ(d, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.f64(d));
  EXPECT_EQ(d, -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.f64(d));
  EXPECT_TRUE(std::isnan(d));
  std::string s;
  EXPECT_TRUE(r.str(s));
  EXPECT_EQ(s, "adaptive window");
  EXPECT_TRUE(r.str(s));
  EXPECT_TRUE(s.empty());
  linalg::Vec rv;
  EXPECT_TRUE(r.vec(rv));
  ASSERT_EQ(rv.size(), 3u);
  EXPECT_EQ(rv[0], 1.0);
  EXPECT_EQ(rv[1], -0.0);
  EXPECT_TRUE(std::signbit(rv[1]));  // -0.0 round-trips with its sign bit
  EXPECT_EQ(rv[2], 3.25);
  linalg::Matrix rm;
  EXPECT_TRUE(r.mat(rm));
  ASSERT_EQ(rm.rows(), 2u);
  ASSERT_EQ(rm.cols(), 3u);
  EXPECT_EQ(rm(0, 0), 1.0);
  EXPECT_EQ(rm(1, 2), -7.0);
  std::optional<std::size_t> ou;
  EXPECT_TRUE(r.opt_u64(ou));
  EXPECT_FALSE(ou.has_value());
  EXPECT_TRUE(r.opt_u64(ou));
  ASSERT_TRUE(ou.has_value());
  EXPECT_EQ(*ou, 42u);
  std::optional<linalg::Vec> ov;
  EXPECT_TRUE(r.opt_vec(ov));
  EXPECT_FALSE(ov.has_value());
  EXPECT_TRUE(r.opt_vec(ov));
  ASSERT_TRUE(ov.has_value());
  EXPECT_EQ(ov->size(), 3u);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.status().is_ok());
}

TEST(CkptWriterReader, BlockNestsAndBorrows) {
  ckpt::Writer inner;
  inner.u64(7);
  inner.str("nested");
  ckpt::Writer outer;
  outer.block(inner.data());
  outer.u32(99);

  ckpt::Reader r(outer.data().data(), outer.size());
  ckpt::Reader nested(nullptr, 0);
  ASSERT_TRUE(r.block(nested));
  std::uint64_t x = 0;
  std::string s;
  EXPECT_TRUE(nested.u64(x));
  EXPECT_EQ(x, 7u);
  EXPECT_TRUE(nested.str(s));
  EXPECT_EQ(s, "nested");
  EXPECT_TRUE(nested.at_end());
  std::uint32_t tail = 0;
  EXPECT_TRUE(r.u32(tail));
  EXPECT_EQ(tail, 99u);
  EXPECT_TRUE(r.at_end());
}

TEST(CkptReader, TruncationLatchesFailure) {
  ckpt::Writer w;
  w.u32(5);
  ckpt::Reader r(w.data().data(), w.size());
  std::uint64_t wide = 0;
  EXPECT_FALSE(r.u64(wide));  // only 4 bytes available
  EXPECT_FALSE(r.ok());
  // Once failed, even a read that would fit keeps failing.
  std::uint8_t byte = 0;
  EXPECT_FALSE(r.u8(byte));
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(CkptReader, BoolByteAboveOneIsCorruption) {
  const std::uint8_t raw[] = {2};
  ckpt::Reader r(raw, sizeof(raw));
  bool v = false;
  EXPECT_FALSE(r.b(v));
  EXPECT_FALSE(r.ok());
}

TEST(CkptReader, HugeCountsRejectedWithoutAllocating) {
  // A length prefix far beyond the buffer (as a flipped byte would produce)
  // must fail the read, not attempt a multi-gigabyte allocation.
  ckpt::Writer w;
  w.u64(0xFFFFFFFFFFFFull);
  {
    ckpt::Reader r(w.data().data(), w.size());
    std::string s;
    EXPECT_FALSE(r.str(s));
  }
  {
    ckpt::Reader r(w.data().data(), w.size());
    linalg::Vec v;
    EXPECT_FALSE(r.vec(v));
  }
  {
    ckpt::Writer wm;
    wm.u64(0xFFFFFFFFull);
    wm.u64(0xFFFFFFFFull);
    ckpt::Reader r(wm.data().data(), wm.size());
    linalg::Matrix m;
    EXPECT_FALSE(r.mat(m));
  }
}

TEST(CkptReader, SemanticFailLatches) {
  ckpt::Writer w;
  w.u64(123);
  ckpt::Reader r(w.data().data(), w.size());
  r.fail();  // caller found an out-of-range enum, say
  std::uint64_t v = 0;
  EXPECT_FALSE(r.u64(v));
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

// --- Snapshot framing -------------------------------------------------------

std::vector<std::uint8_t> two_section_snapshot(std::uint64_t fingerprint = 0x5EED) {
  ckpt::SnapshotBuilder builder;
  ckpt::Writer& a = builder.section(7);
  a.str("alpha");
  a.u64(11);
  ckpt::Writer& b = builder.section(9);
  b.f64(2.5);
  return builder.finish(fingerprint);
}

/// Recompute the header CRC after an intentional in-place header edit, so a
/// test can reach the checks that come *after* CRC validation.
void fix_header_crc(std::vector<std::uint8_t>& img) {
  const std::uint32_t crc = ckpt::crc32(img.data(), ckpt::kHeaderSize - 4);
  for (int i = 0; i < 4; ++i) {
    img[ckpt::kHeaderSize - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

TEST(CkptSnapshot, BuildParseRoundTrip) {
  const std::vector<std::uint8_t> img = two_section_snapshot();
  Result<ckpt::SnapshotView> view = ckpt::SnapshotView::parse(img);
  ASSERT_TRUE(view.is_ok()) << view.status().message();
  EXPECT_EQ(view.value().version(), ckpt::kFormatVersion);
  EXPECT_EQ(view.value().fingerprint(), 0x5EEDu);
  ASSERT_EQ(view.value().sections().size(), 2u);
  EXPECT_EQ(view.value().sections()[0].id, 7u);
  EXPECT_EQ(view.value().sections()[1].id, 9u);
  EXPECT_EQ(view.value().find(9), &view.value().sections()[1]);
  EXPECT_EQ(view.value().find(3), nullptr);

  ckpt::Reader r = view.value().sections()[0].reader();
  std::string s;
  std::uint64_t x = 0;
  EXPECT_TRUE(r.str(s));
  EXPECT_EQ(s, "alpha");
  EXPECT_TRUE(r.u64(x));
  EXPECT_EQ(x, 11u);
  EXPECT_TRUE(r.at_end());
}

TEST(CkptSnapshot, EmptySnapshotParses) {
  ckpt::SnapshotBuilder builder;
  const std::vector<std::uint8_t> img = builder.finish(0);
  Result<ckpt::SnapshotView> view = ckpt::SnapshotView::parse(img);
  ASSERT_TRUE(view.is_ok());
  EXPECT_TRUE(view.value().sections().empty());
}

// The ISSUE's header robustness sweep: flip every bit of every header field
// (magic, version, section count, fingerprint, reserved, CRC) and require a
// typed error every time — corruption anywhere in the 32-byte header must
// never parse, and must never crash or read out of bounds.
TEST(CkptSnapshot, BitFlipEveryHeaderFieldRejected) {
  const std::vector<std::uint8_t> good = two_section_snapshot();
  ASSERT_TRUE(ckpt::SnapshotView::parse(good).is_ok());
  for (std::size_t byte = 0; byte < ckpt::kHeaderSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> img = good;
      img[byte] = static_cast<std::uint8_t>(img[byte] ^ (1u << bit));
      Result<ckpt::SnapshotView> view = ckpt::SnapshotView::parse(img);
      ASSERT_FALSE(view.is_ok()) << "byte " << byte << " bit " << bit;
      const StatusCode code = view.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss || code == StatusCode::kUnimplemented)
          << "byte " << byte << " bit " << bit << ": "
          << view.status().message();
      EXPECT_FALSE(view.status().message().empty());
    }
  }
}

TEST(CkptSnapshot, EachHeaderFieldFailsTyped) {
  // Magic (checked before the CRC, so no fix-up needed).
  {
    std::vector<std::uint8_t> img = two_section_snapshot();
    img[0] = 'X';
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().message(), "bad snapshot magic");
  }
  // Version mismatch, with the CRC recomputed so the version check is the
  // one that fires: must be kUnimplemented, the upgrade-path signal.
  {
    std::vector<std::uint8_t> img = two_section_snapshot();
    img[8] = static_cast<std::uint8_t>(ckpt::kFormatVersion + 1);
    fix_header_crc(img);
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kUnimplemented);
    EXPECT_EQ(v.status().message(), "unsupported snapshot format version");
  }
  // Reserved field, same treatment.
  {
    std::vector<std::uint8_t> img = two_section_snapshot();
    img[24] = 1;
    fix_header_crc(img);
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().message(), "snapshot header reserved field not zero");
  }
  // Fingerprint flip without fix-up trips the CRC (the parse-level guard);
  // with fix-up it parses and defers to the engine's fingerprint check.
  {
    std::vector<std::uint8_t> img = two_section_snapshot();
    img[16] ^= 0xFF;
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().message(), "snapshot header CRC mismatch");
    fix_header_crc(img);
    Result<ckpt::SnapshotView> fixed = ckpt::SnapshotView::parse(img);
    ASSERT_TRUE(fixed.is_ok());
    EXPECT_NE(fixed.value().fingerprint(), 0x5EEDu);
  }
}

TEST(CkptSnapshot, SectionCorruptionRejected) {
  const std::vector<std::uint8_t> good = two_section_snapshot();
  // Payload byte flip -> section CRC mismatch.
  {
    std::vector<std::uint8_t> img = good;
    img[ckpt::kHeaderSize + ckpt::kSectionHeaderSize] ^= 0x01;
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().message(), "snapshot section CRC mismatch");
  }
  // Section reserved field non-zero.
  {
    std::vector<std::uint8_t> img = good;
    img[ckpt::kHeaderSize + 4] = 1;
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().message(), "snapshot section reserved field not zero");
  }
  // A stray trailing byte after the last section.
  {
    std::vector<std::uint8_t> img = good;
    img.push_back(0);
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().message(), "snapshot has trailing bytes");
  }
}

// Every proper prefix of a valid snapshot must fail to parse — never crash,
// never succeed on partial data (the crash-mid-write case the atomic file
// helper exists to prevent, exercised here directly against the parser).
TEST(CkptSnapshot, EveryTruncationRejected) {
  const std::vector<std::uint8_t> good = two_section_snapshot();
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::vector<std::uint8_t> img(good.begin(), good.begin() + static_cast<long>(len));
    Result<ckpt::SnapshotView> v = ckpt::SnapshotView::parse(img);
    ASSERT_FALSE(v.is_ok()) << "prefix length " << len;
    EXPECT_EQ(v.status().code(), StatusCode::kDataLoss) << "prefix length " << len;
  }
}

// --- File helpers -----------------------------------------------------------

TEST(CkptFile, WriteReadRoundTripAndOverwrite) {
  const std::string path = ::testing::TempDir() + "awd_ckpt_file_test.snap";
  const std::vector<std::uint8_t> img = two_section_snapshot();
  ASSERT_TRUE(ckpt::write_file(path, img).is_ok());
  // No .tmp staging file may survive a successful write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  Result<std::vector<std::uint8_t>> back = ckpt::read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), img);

  // Rename-over semantics: a second write replaces the file atomically.
  const std::vector<std::uint8_t> img2 = two_section_snapshot(0xABCD);
  ASSERT_TRUE(ckpt::write_file(path, img2).is_ok());
  Result<std::vector<std::uint8_t>> back2 = ckpt::read_file(path);
  ASSERT_TRUE(back2.is_ok());
  EXPECT_EQ(back2.value(), img2);
  std::remove(path.c_str());
}

TEST(CkptFile, MissingFileIsUnavailable) {
  Result<std::vector<std::uint8_t>> r =
      ckpt::read_file(::testing::TempDir() + "awd_ckpt_no_such_file.snap");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// --- Configuration codecs (ckpt_io) -----------------------------------------

// write_case ∘ read_case must be a byte identity: the engine fingerprint is
// fnv1a64 over re-encoded spec blocks, so any drift here would break
// restore's fingerprint verification.
TEST(CkptIo, CaseCodecIsByteIdentity) {
  for (const SimulatorCase& scase : table1_cases()) {
    ckpt::Writer w;
    ckpt::write_case(w, scase);
    ckpt::Reader r(w.data().data(), w.size());
    SimulatorCase back;
    ASSERT_TRUE(ckpt::read_case(r, back)) << scase.key;
    EXPECT_TRUE(r.at_end()) << scase.key;
    ckpt::Writer w2;
    ckpt::write_case(w2, back);
    EXPECT_EQ(w.data(), w2.data()) << scase.key;
    EXPECT_EQ(back.key, scase.key);
    EXPECT_EQ(back.steps, scase.steps);
    EXPECT_EQ(back.max_window, scase.max_window);
  }
}

TEST(CkptIo, FaultPlanRoundTripAndRejection) {
  fault::FaultPlan plan;
  plan.add({.start = 10, .duration = 5, .kind = fault::FaultKind::kDropout});
  plan.add({.start = 40, .duration = 8, .kind = fault::FaultKind::kStuckAtLast});
  ckpt::Writer w;
  ckpt::write_fault_plan(w, plan);
  ckpt::Reader r(w.data().data(), w.size());
  fault::FaultPlan back;
  ASSERT_TRUE(ckpt::read_fault_plan(r, back));
  ckpt::Writer w2;
  ckpt::write_fault_plan(w2, back);
  EXPECT_EQ(w.data(), w2.data());

  // An out-of-range kind byte must fail the read, not throw from
  // FaultPlan::add.
  std::vector<std::uint8_t> corrupt = w.take();
  bool rejected_something = false;
  for (std::size_t i = 0; i < corrupt.size(); ++i) {
    std::vector<std::uint8_t> img = corrupt;
    img[i] = 0xEE;
    ckpt::Reader cr(img.data(), img.size());
    fault::FaultPlan out;
    if (!ckpt::read_fault_plan(cr, out)) rejected_something = true;
  }
  EXPECT_TRUE(rejected_something);
}

TEST(CkptIo, AttackKindRejectsOutOfRange) {
  ckpt::Writer w;
  w.u8(0xFF);
  ckpt::Reader r(w.data().data(), w.size());
  AttackKind k = AttackKind::kNone;
  EXPECT_FALSE(ckpt::read_attack_kind(r, k));
  EXPECT_FALSE(r.ok());
}

TEST(CkptIo, IntervalRejectsInverted) {
  ckpt::Writer w;
  w.f64(2.0);  // lo > hi: unconstructible
  w.f64(-2.0);
  ckpt::Reader r(w.data().data(), w.size());
  reach::Interval v{};
  EXPECT_FALSE(ckpt::read_interval(r, v));
}

TEST(CkptIo, SystemOptionsRoundTrip) {
  DetectionSystemOptions o;
  o.lean_records = true;
  o.per_step_obs = false;
  ckpt::Writer w;
  ckpt::write_system_options(w, o);
  ckpt::Reader r(w.data().data(), w.size());
  DetectionSystemOptions back;
  ASSERT_TRUE(ckpt::read_system_options(r, back));
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back.lean_records, o.lean_records);
  EXPECT_EQ(back.per_step_obs, o.per_step_obs);
}

}  // namespace
