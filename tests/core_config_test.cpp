// Unit tests for the experiment configurations (Table 1 encodings).
#include "core/config.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "models/model_bank.hpp"

namespace awd::core {
namespace {

TEST(Config, AllTable1CasesValidate) {
  const auto cases = table1_cases();
  ASSERT_EQ(cases.size(), 5u);
  for (const auto& c : cases) EXPECT_NO_THROW(c.validate()) << c.key;
}

TEST(Config, Table1Order) {
  const auto cases = table1_cases();
  EXPECT_EQ(cases[0].key, "aircraft_pitch");
  EXPECT_EQ(cases[1].key, "vehicle_turning");
  EXPECT_EQ(cases[2].key, "series_rlc");
  EXPECT_EQ(cases[3].key, "dc_motor");
  EXPECT_EQ(cases[4].key, "quadrotor");
}

TEST(Config, LookupByKey) {
  EXPECT_EQ(simulator_case("series_rlc").display_name, "Series RLC Circuit");
  EXPECT_EQ(simulator_case("testbed_car").key, "testbed_car");
  EXPECT_THROW((void)simulator_case("nonexistent"), std::invalid_argument);
}

// Table 1 row checks: δ, PID, U, conservative ε bound, safe set S, τ.
TEST(Config, AircraftPitchMatchesTable1) {
  const SimulatorCase c = simulator_case("aircraft_pitch");
  EXPECT_DOUBLE_EQ(c.model.dt, 0.02);
  EXPECT_DOUBLE_EQ(c.pid.kp, 14.0);
  EXPECT_DOUBLE_EQ(c.pid.ki, 0.8);
  EXPECT_DOUBLE_EQ(c.pid.kd, 5.7);
  EXPECT_DOUBLE_EQ(c.u_range[0].lo, -7.0);
  EXPECT_DOUBLE_EQ(c.u_range[0].hi, 7.0);
  EXPECT_DOUBLE_EQ(c.eps_reach, 7.8e-3);
  EXPECT_DOUBLE_EQ(c.safe_set[2].lo, -2.5);
  EXPECT_DOUBLE_EQ(c.safe_set[2].hi, 2.5);
  EXPECT_FALSE(c.safe_set[0].bounded());
  EXPECT_EQ(c.tau, (Vec{0.012, 0.012, 0.012}));
  EXPECT_EQ(c.max_window, 40u);  // §6.1.2's chosen w_m
}

TEST(Config, VehicleTurningMatchesTable1) {
  const SimulatorCase c = simulator_case("vehicle_turning");
  EXPECT_DOUBLE_EQ(c.model.dt, 0.02);
  EXPECT_DOUBLE_EQ(c.pid.kp, 0.5);
  EXPECT_DOUBLE_EQ(c.pid.ki, 7.0);
  EXPECT_DOUBLE_EQ(c.u_range[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(c.eps_reach, 7.5e-2);
  EXPECT_DOUBLE_EQ(c.safe_set[0].hi, 2.0);
  EXPECT_EQ(c.tau, (Vec{0.07}));
}

TEST(Config, SeriesRlcMatchesTable1) {
  const SimulatorCase c = simulator_case("series_rlc");
  EXPECT_DOUBLE_EQ(c.pid.kp, 5.0);
  EXPECT_DOUBLE_EQ(c.pid.ki, 5.0);
  EXPECT_DOUBLE_EQ(c.u_range[0].hi, 5.0);
  EXPECT_DOUBLE_EQ(c.eps_reach, 1.7e-2);
  EXPECT_DOUBLE_EQ(c.safe_set[0].hi, 3.5);
  EXPECT_DOUBLE_EQ(c.safe_set[1].hi, 5.0);
  EXPECT_EQ(c.tau, (Vec{0.04, 0.01}));
}

TEST(Config, DcMotorMatchesTable1) {
  const SimulatorCase c = simulator_case("dc_motor");
  EXPECT_DOUBLE_EQ(c.model.dt, 0.1);
  EXPECT_DOUBLE_EQ(c.pid.kp, 11.0);
  EXPECT_DOUBLE_EQ(c.pid.kd, 5.0);
  EXPECT_DOUBLE_EQ(c.u_range[0].hi, 20.0);
  EXPECT_DOUBLE_EQ(c.eps_reach, 1.5e-1);
  EXPECT_DOUBLE_EQ(c.safe_set[0].hi, 4.0);
  EXPECT_FALSE(c.safe_set[1].bounded());
}

TEST(Config, QuadrotorMatchesTable1) {
  const SimulatorCase c = simulator_case("quadrotor");
  EXPECT_DOUBLE_EQ(c.model.dt, 0.1);
  EXPECT_EQ(c.model.state_dim(), 12u);
  EXPECT_EQ(c.model.input_dim(), 4u);
  EXPECT_DOUBLE_EQ(c.pid.kp, 0.8);
  EXPECT_DOUBLE_EQ(c.pid.kd, 1.0);
  EXPECT_DOUBLE_EQ(c.eps, 1.56e-15);
  EXPECT_DOUBLE_EQ(c.safe_set[2].hi, 5.0);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(c.tau[i], 0.018);
}

TEST(Config, TestbedMatchesSection62) {
  const SimulatorCase c = testbed_case();
  EXPECT_DOUBLE_EQ(c.model.A(0, 0), 0.8435);
  EXPECT_DOUBLE_EQ(c.model.B(0, 0), 7.7919e-4);
  EXPECT_DOUBLE_EQ(c.safe_set[0].lo, 5.2e-3);
  EXPECT_DOUBLE_EQ(c.safe_set[0].hi, 2.6e-2);
  EXPECT_DOUBLE_EQ(c.tau[0], 3.67e-3);
  EXPECT_DOUBLE_EQ(c.u_range[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(c.u_range[0].hi, 7.7);
  EXPECT_EQ(c.attack_start, 79u);
  EXPECT_NEAR(c.bias[0], 2.5 / models::kTestbedCarC, 1e-12);
  EXPECT_EQ(c.fixed_window, 30u);  // Fig. 8's fixed baseline
}

TEST(Config, EpsReachIsConservative) {
  for (const auto& c : table1_cases()) {
    if (c.eps_reach != 0.0) EXPECT_GE(c.eps_reach, c.eps) << c.key;
  }
}

TEST(Config, MakeControllerProducesWorkingPid) {
  const SimulatorCase c = simulator_case("vehicle_turning");
  auto ctrl = c.make_controller();
  ASSERT_NE(ctrl, nullptr);
  EXPECT_NO_THROW((void)ctrl->compute(c.x0, c.reference));
}

TEST(Config, MakeAttackAllKinds) {
  const SimulatorCase c = simulator_case("aircraft_pitch");
  EXPECT_EQ(c.make_attack(AttackKind::kNone)->name(), "none");
  EXPECT_EQ(c.make_attack(AttackKind::kBias)->name(), "bias");
  EXPECT_EQ(c.make_attack(AttackKind::kDelay)->name(), "delay");
  EXPECT_EQ(c.make_attack(AttackKind::kReplay)->name(), "replay");
  EXPECT_EQ(c.make_attack(AttackKind::kRamp)->name(), "ramp");
}

TEST(Config, ReplayDurationClampedToRecordedPrefix) {
  SimulatorCase c = simulator_case("aircraft_pitch");
  c.replay_record_start = 100;  // only 50 steps available before the attack
  const auto attack = c.make_attack(AttackKind::kReplay);
  EXPECT_TRUE(attack->active(c.attack_start));
  EXPECT_TRUE(attack->active(c.attack_start + 49));
  EXPECT_FALSE(attack->active(c.attack_start + 50));
}

TEST(Config, AttackKindToString) {
  EXPECT_EQ(to_string(AttackKind::kNone), "none");
  EXPECT_EQ(to_string(AttackKind::kRamp), "ramp");
}

TEST(Config, ValidationCatchesBrokenCase) {
  SimulatorCase c = simulator_case("vehicle_turning");
  c.tau = Vec{0.1, 0.1};
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = simulator_case("vehicle_turning");
  c.attack_start = c.steps;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = simulator_case("vehicle_turning");
  c.eps_reach = c.eps / 2.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, ValidationRejectsNonFiniteValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  auto broken = [](auto mutate) {
    SimulatorCase c = simulator_case("vehicle_turning");
    mutate(c);
    return c;
  };

  // Each descriptive message names the offending field.
  try {
    broken([&](SimulatorCase& c) { c.tau[0] = nan; }).validate();
    FAIL() << "non-finite tau accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tau"), std::string::npos);
  }
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.tau[0] = inf; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.tau[0] = -0.1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.x0[0] = nan; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.reference[0] = inf; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.sensor_noise[0] = nan; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.sensor_noise[0] = -1.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.bias[0] = nan; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.ramp_slope[0] = inf; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.eps = nan; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.eps = inf; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([&](SimulatorCase& c) { c.eps_reach = nan; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      broken([&](SimulatorCase& c) { c.reference_schedule = {{10, Vec{nan}}}; }).validate(),
      std::invalid_argument);
}

TEST(Config, CheckIsNoexceptAndOkOnEveryTemplate) {
  static_assert(noexcept(std::declval<const SimulatorCase&>().check()));
  for (const SimulatorCase& c : table1_cases()) {
    const Status s = c.check();
    EXPECT_TRUE(s.is_ok()) << c.key << ": " << s.message();
  }
  EXPECT_TRUE(testbed_case().check().is_ok());
}

TEST(Config, CheckRejectsZeroMaxWindowWithClearMessage) {
  SimulatorCase c = simulator_case("dc_motor");
  c.max_window = 0;
  const Status s = c.check();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidInput);
  EXPECT_NE(s.message().find("max_window"), std::string_view::npos);

  try {
    c.validate();
    FAIL() << "max_window == 0 accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dc_motor"), std::string::npos);
    EXPECT_NE(what.find("max_window must be >= 1"), std::string::npos);
  }
}

TEST(Config, CheckRejectsNonPositiveTauWithClearMessage) {
  for (const double bad : {0.0, -0.07}) {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.tau[0] = bad;
    const Status s = c.check();
    ASSERT_FALSE(s.is_ok()) << "tau = " << bad << " accepted";
    EXPECT_EQ(s.code(), StatusCode::kInvalidInput);
    EXPECT_NE(s.message().find("tau must be > 0"), std::string_view::npos);
    try {
      c.validate();
      FAIL() << "tau = " << bad << " accepted by validate()";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("tau"), std::string::npos);
    }
  }
}

TEST(Config, CheckReportsShapeMismatchesWithoutThrowing) {
  SimulatorCase c = simulator_case("vehicle_turning");
  c.tau = Vec{0.1, 0.1};  // scalar plant: wrong threshold dimension
  const Status s = c.check();
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("tau dimension mismatch"), std::string_view::npos);
}

TEST(Config, UnknownKeyErrorListsValidNames) {
  try {
    (void)simulator_case("warp_drive");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp_drive"), std::string::npos);
    for (const char* key : {"aircraft_pitch", "vehicle_turning", "series_rlc",
                            "dc_motor", "quadrotor", "testbed_car"}) {
      EXPECT_NE(what.find(key), std::string::npos) << key;
    }
  }
}

TEST(Config, MakeAttackAdversarialKinds) {
  const SimulatorCase c = simulator_case("aircraft_pitch");
  EXPECT_EQ(c.make_attack(AttackKind::kStealthyRamp)->name(), "stealthy_ramp");
  EXPECT_EQ(c.make_attack(AttackKind::kJitterReplay)->name(), "jitter_replay");
  EXPECT_EQ(c.make_attack(AttackKind::kCoordinatedBias)->name(), "coordinated_bias");
  EXPECT_EQ(c.make_attack(AttackKind::kIntermittentBias)->name(), "intermittent_bias");
  EXPECT_EQ(to_string(AttackKind::kStealthyRamp), "stealthy_ramp");
  EXPECT_EQ(to_string(AttackKind::kIntermittentBias), "intermittent_bias");
}

TEST(Config, CheckRejectsTargetFarOutsideOpenUnitInterval) {
  // The interval is open at both ends: 0 and 1 are invalid, the adjacent
  // representable doubles are valid.
  for (const double bad : {0.0, 1.0, -0.01, 1.5,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.target_far = bad;
    const Status s = c.check();
    ASSERT_FALSE(s.is_ok()) << "target_far = " << bad;
    EXPECT_EQ(s.code(), StatusCode::kInvalidInput);
    EXPECT_NE(s.message().find("target_far"), std::string_view::npos);
  }
  for (const double good : {std::nextafter(0.0, 1.0), std::nextafter(1.0, 0.0), 0.5}) {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.target_far = good;
    EXPECT_TRUE(c.check().is_ok()) << "target_far = " << good;
  }
}

TEST(Config, CheckRejectsZeroTuneTrials) {
  SimulatorCase c = simulator_case("vehicle_turning");
  c.tune_trials = 0;
  const Status s = c.check();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidInput);
  EXPECT_NE(s.message().find("tune_trials"), std::string_view::npos);
  c.tune_trials = 1;  // the boundary itself is valid
  EXPECT_TRUE(c.check().is_ok());
}

TEST(Config, CheckRejectsStealthMarginOutsideOpenUnitInterval) {
  for (const double bad : {0.0, 1.0, -0.2, 2.0,
                           std::numeric_limits<double>::quiet_NaN()}) {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.stealth_margin = bad;
    const Status s = c.check();
    ASSERT_FALSE(s.is_ok()) << "stealth_margin = " << bad;
    EXPECT_NE(s.message().find("stealth_margin"), std::string_view::npos);
  }
  SimulatorCase c = simulator_case("vehicle_turning");
  c.stealth_margin = std::nextafter(1.0, 0.0);
  EXPECT_TRUE(c.check().is_ok());
}

TEST(Config, CheckRejectsDegenerateIntermittentDutyCycle) {
  {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.intermittent_period = 1;
    EXPECT_FALSE(c.check().is_ok());
  }
  {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.intermittent_on = 0;
    EXPECT_FALSE(c.check().is_ok());
  }
  {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.intermittent_period = 4;
    c.intermittent_on = 4;  // always-on is not intermittent
    const Status s = c.check();
    ASSERT_FALSE(s.is_ok());
    EXPECT_NE(s.message().find("intermittent_on"), std::string_view::npos);
  }
  {
    SimulatorCase c = simulator_case("vehicle_turning");
    c.intermittent_period = 2;
    c.intermittent_on = 1;  // tightest valid duty cycle
    EXPECT_TRUE(c.check().is_ok());
  }
}

}  // namespace
}  // namespace awd::core
