// Tests for CSV trace export.
#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/detection_system.hpp"

namespace awd::core {
namespace {

TEST(Csv, HeaderAndRowCount) {
  const SimulatorCase scase = simulator_case("series_rlc");
  DetectionSystem system(scase, AttackKind::kBias, 1);
  const sim::Trace trace = system.run(20);

  std::ostringstream out;
  write_trace_csv(out, trace);
  const std::string text = out.str();

  std::size_t lines = 0;
  for (char ch : text) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 21u);  // header + 20 rows
  EXPECT_EQ(text.rfind("t,x0,x1,est0,est1,residual0,residual1,u0,", 0), 0u);
  EXPECT_NE(text.find("adaptive_alarm"), std::string::npos);
}

TEST(Csv, FieldCountConsistentPerRow) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystem system(scase, AttackKind::kNone, 2);
  std::ostringstream out;
  write_trace_csv(out, system.run(5));

  std::istringstream in(out.str());
  std::string line;
  std::size_t expected_commas = 0;
  bool first = true;
  while (std::getline(in, line)) {
    const std::size_t commas =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
    if (first) {
      expected_commas = commas;
      first = false;
    } else {
      EXPECT_EQ(commas, expected_commas);
    }
  }
  // 1 state dim: t + x + est + residual + u + 6 flags/meta = 11 fields.
  EXPECT_EQ(expected_commas, 10u);
}

TEST(Csv, EmptyTraceThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_trace_csv(out, sim::Trace{}), std::invalid_argument);
}

TEST(Csv, UnwritablePathThrows) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystem system(scase, AttackKind::kNone, 2);
  EXPECT_THROW(write_trace_csv("/nonexistent_dir/trace.csv", system.run(3)),
               std::runtime_error);
}

}  // namespace
}  // namespace awd::core
