// Integration tests for the full detection pipeline (Fig. 1 architecture).
#include "core/detection_system.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace awd::core {
namespace {

TEST(DetectionSystem, RunsTheConfiguredLength) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystem system(scase, AttackKind::kNone, 1);
  const sim::Trace trace = system.run();
  EXPECT_EQ(trace.size(), scase.steps);
  DetectionSystem system2(scase, AttackKind::kNone, 1);
  EXPECT_EQ(system2.run(50).size(), 50u);
}

TEST(DetectionSystem, DeadlineDefaultsToMaxWindowEarlyOn) {
  const SimulatorCase scase = simulator_case("series_rlc");
  DetectionSystem system(scase, AttackKind::kNone, 2);
  const sim::StepRecord first = system.step();
  EXPECT_EQ(first.deadline, scase.max_window);
}

TEST(DetectionSystem, WindowNeverExceedsMaxWindow) {
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  DetectionSystem system(scase, AttackKind::kBias, 3);
  const sim::Trace trace = system.run();
  for (const auto& rec : trace) {
    EXPECT_LE(rec.window, scase.max_window);
    EXPECT_LE(rec.window, rec.deadline);
  }
}

TEST(DetectionSystem, SameSeedIsFullyDeterministic) {
  const SimulatorCase scase = simulator_case("series_rlc");
  DetectionSystem a(scase, AttackKind::kReplay, 9);
  DetectionSystem b(scase, AttackKind::kReplay, 9);
  const sim::Trace ta = a.run();
  const sim::Trace tb = b.run();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].adaptive_alarm, tb[i].adaptive_alarm);
    EXPECT_EQ(ta[i].deadline, tb[i].deadline);
    EXPECT_EQ(ta[i].true_state[0], tb[i].true_state[0]);
  }
}

TEST(DetectionSystem, BiasAttackDetectedBeforeDeadlineAcrossSeeds) {
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  int in_time = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DetectionSystem system(scase, AttackKind::kBias, seed);
    const sim::Trace trace = system.run();
    const RunMetrics m = compute_metrics(trace, scase.attack_start, scase.attack_duration,
                                         Strategy::kAdaptive);
    if (!m.deadline_miss) ++in_time;
  }
  EXPECT_GE(in_time, 4);  // the paper's headline behaviour
}

TEST(DetectionSystem, FixedWindowOverride) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystemOptions opts;
  opts.fixed_window = 2;
  DetectionSystem system(scase, AttackKind::kBias, 4, opts);
  // With a tiny fixed window the baseline behaves like the adaptive
  // detector at onset: the bias spike must be caught quickly.
  const sim::Trace trace = system.run();
  const RunMetrics mf = compute_metrics(trace, scase.attack_start, scase.attack_duration,
                                        Strategy::kFixed);
  ASSERT_TRUE(mf.first_alarm_after_onset.has_value());
  EXPECT_LE(*mf.first_alarm_after_onset - scase.attack_start, 3u);
}

TEST(DetectionSystem, EvaluationCounterAdvances) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystem system(scase, AttackKind::kNone, 5);
  (void)system.run(100);
  // At least one evaluation per step; shrinks add complementary sweeps.
  EXPECT_GE(system.adaptive_evaluations(), 100u);
}

TEST(DetectionSystem, UnsafeFlagTracksSafeSet) {
  const SimulatorCase scase = testbed_case();
  DetectionSystem system(scase, AttackKind::kBias, 7);
  const sim::Trace trace = system.run();
  for (const auto& rec : trace) {
    EXPECT_EQ(rec.unsafe, !scase.safe_set.contains(rec.true_state));
  }
}

TEST(DetectionSystem, TestbedReproducesFig8Ordering) {
  // The §6.2 headline: adaptive alerts before the car leaves the safe
  // range; the fixed window-30 detector does not alert before it.
  const SimulatorCase scase = testbed_case();
  int adaptive_before_unsafe = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DetectionSystem system(scase, AttackKind::kBias, seed);
    const sim::Trace trace = system.run();
    const RunMetrics ma = compute_metrics(trace, scase.attack_start,
                                          scase.attack_duration, Strategy::kAdaptive);
    const RunMetrics mf = compute_metrics(trace, scase.attack_start,
                                          scase.attack_duration, Strategy::kFixed);
    ASSERT_TRUE(ma.first_alarm_after_onset.has_value()) << "seed " << seed;
    ASSERT_TRUE(ma.first_unsafe.has_value()) << "seed " << seed;
    if (*ma.first_alarm_after_onset < *ma.first_unsafe) ++adaptive_before_unsafe;
    if (mf.first_alarm_after_onset) {
      EXPECT_GT(*mf.first_alarm_after_onset, *ma.first_unsafe) << "seed " << seed;
    }
  }
  EXPECT_GE(adaptive_before_unsafe, 4);
}

TEST(DetectionSystem, AccessorsExposeComponents) {
  const SimulatorCase scase = simulator_case("series_rlc");
  DetectionSystem system(scase, AttackKind::kNone, 1);
  EXPECT_EQ(system.scase().key, "series_rlc");
  EXPECT_EQ(system.logger().max_window(), scase.max_window);
  EXPECT_EQ(system.estimator().config().max_window, scase.max_window);
  EXPECT_EQ(system.estimator().kind(), reach::BackendKind::kBox);
  EXPECT_EQ(system.estimator().name(), "box");
  const auto* cached =
      dynamic_cast<const reach::CachedWalkBackend*>(&system.estimator());
  ASSERT_NE(cached, nullptr);
  EXPECT_DOUBLE_EQ(cached->reach().uncertainty_bound(), scase.eps_reach);
}

}  // namespace
}  // namespace awd::core
