// Tests for the Monte-Carlo experiment runners (Table 2 / Fig. 7 workloads,
// scaled down for test time).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace awd::core {
namespace {

TEST(Experiment, CellResultCountsAreConsistent) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  MetricsOptions opts;
  opts.warmup = 100;
  const CellResult cell = run_cell(scase, AttackKind::kBias, 10, 2022, opts);
  EXPECT_EQ(cell.runs, 10u);
  EXPECT_EQ(cell.simulator, "vehicle_turning");
  EXPECT_LE(cell.fp_adaptive, 10u);
  EXPECT_LE(cell.dm_fixed, 10u);
  // FN implies DM by definition.
  EXPECT_LE(cell.fn_adaptive, cell.dm_adaptive);
  EXPECT_LE(cell.fn_fixed, cell.dm_fixed);
}

TEST(Experiment, DeterministicForFixedBaseSeed) {
  const SimulatorCase scase = simulator_case("series_rlc");
  MetricsOptions opts;
  opts.warmup = 100;
  const CellResult a = run_cell(scase, AttackKind::kBias, 5, 7, opts);
  const CellResult b = run_cell(scase, AttackKind::kBias, 5, 7, opts);
  EXPECT_EQ(a.fp_adaptive, b.fp_adaptive);
  EXPECT_EQ(a.dm_fixed, b.dm_fixed);
  EXPECT_EQ(a.mean_delay_adaptive, b.mean_delay_adaptive);
}

TEST(Experiment, HeadlineOrderingOnBiasCell) {
  // The paper's Table 2 structure: adaptive has (weakly) more FP
  // experiments and (strictly) fewer deadline misses than fixed.
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  MetricsOptions opts;
  opts.warmup = 100;
  opts.fp_threshold = 0.01;
  const CellResult cell = run_cell(scase, AttackKind::kBias, 20, 2022, opts);
  EXPECT_GE(cell.fp_adaptive, cell.fp_fixed);
  EXPECT_LT(cell.dm_adaptive, cell.dm_fixed);
  EXPECT_EQ(cell.dm_adaptive, 0u);
}

TEST(Experiment, WindowSweepShapesMatchFig7) {
  SimulatorCase scase = simulator_case("aircraft_pitch");
  scase.attack_duration = 15;  // §6.1.2
  MetricsOptions opts;
  opts.warmup = 100;
  const std::vector<std::size_t> windows = {0, 40, 100};
  const auto points = fixed_window_sweep(scase, AttackKind::kBias, windows, 30, 2022, opts);
  ASSERT_EQ(points.size(), 3u);
  // FP experiments decrease with window size; FN experiments increase.
  EXPECT_GT(points[0].fp_experiments, points[1].fp_experiments);
  EXPECT_GE(points[1].fp_experiments, points[2].fp_experiments);
  EXPECT_LE(points[0].fn_experiments, points[1].fn_experiments);
  EXPECT_LT(points[1].fn_experiments, points[2].fn_experiments);
  // At w=0 every run alarms constantly: all FP, no FN.
  EXPECT_EQ(points[0].fp_experiments, 30u);
  EXPECT_EQ(points[0].fn_experiments, 0u);
}

TEST(Experiment, SweepIsDeterministic) {
  SimulatorCase scase = simulator_case("vehicle_turning");
  scase.attack_duration = 15;
  const std::vector<std::size_t> windows = {0, 10};
  const auto a = fixed_window_sweep(scase, AttackKind::kBias, windows, 5, 3, {});
  const auto b = fixed_window_sweep(scase, AttackKind::kBias, windows, 5, 3, {});
  EXPECT_EQ(a[0].fp_experiments, b[0].fp_experiments);
  EXPECT_EQ(a[1].fn_experiments, b[1].fn_experiments);
}

}  // namespace
}  // namespace awd::core
