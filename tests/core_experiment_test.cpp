// Tests for the Monte-Carlo experiment runners (Table 2 / Fig. 7 workloads,
// scaled down for test time).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace awd::core {
namespace {

TEST(Experiment, CellResultCountsAreConsistent) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  MetricsOptions opts;
  opts.warmup = 100;
  const CellResult cell = run_cell({.scase = scase,
                                    .attack = AttackKind::kBias,
                                    .runs = 10,
                                    .base_seed = 2022,
                                    .metrics = opts})
                              .value();
  EXPECT_EQ(cell.runs, 10u);
  EXPECT_EQ(cell.simulator, "vehicle_turning");
  EXPECT_LE(cell.fp_adaptive, 10u);
  EXPECT_LE(cell.dm_fixed, 10u);
  // FN implies DM by definition.
  EXPECT_LE(cell.fn_adaptive, cell.dm_adaptive);
  EXPECT_LE(cell.fn_fixed, cell.dm_fixed);
}

TEST(Experiment, DeterministicForFixedBaseSeed) {
  const SimulatorCase scase = simulator_case("series_rlc");
  MetricsOptions opts;
  opts.warmup = 100;
  const ExperimentSpec spec{.scase = scase,
                            .attack = AttackKind::kBias,
                            .runs = 5,
                            .base_seed = 7,
                            .metrics = opts};
  const CellResult a = run_cell(spec).value();
  const CellResult b = run_cell(spec).value();
  EXPECT_EQ(a.fp_adaptive, b.fp_adaptive);
  EXPECT_EQ(a.dm_fixed, b.dm_fixed);
  EXPECT_EQ(a.mean_delay_adaptive, b.mean_delay_adaptive);
}

TEST(Experiment, HeadlineOrderingOnBiasCell) {
  // The paper's Table 2 structure: adaptive has (weakly) more FP
  // experiments and (strictly) fewer deadline misses than fixed.
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  MetricsOptions opts;
  opts.warmup = 100;
  opts.fp_threshold = 0.01;
  const CellResult cell = run_cell({.scase = scase,
                                    .attack = AttackKind::kBias,
                                    .runs = 20,
                                    .base_seed = 2022,
                                    .metrics = opts})
                              .value();
  EXPECT_GE(cell.fp_adaptive, cell.fp_fixed);
  EXPECT_LT(cell.dm_adaptive, cell.dm_fixed);
  EXPECT_EQ(cell.dm_adaptive, 0u);
}

TEST(Experiment, WindowSweepShapesMatchFig7) {
  SimulatorCase scase = simulator_case("aircraft_pitch");
  scase.attack_duration = 15;  // §6.1.2
  MetricsOptions opts;
  opts.warmup = 100;
  const auto points = fixed_window_sweep({.scase = scase,
                                          .attack = AttackKind::kBias,
                                          .windows = {0, 40, 100},
                                          .runs = 30,
                                          .base_seed = 2022,
                                          .metrics = opts})
                          .value();
  ASSERT_EQ(points.size(), 3u);
  // FP experiments decrease with window size; FN experiments increase.
  EXPECT_GT(points[0].fp_experiments, points[1].fp_experiments);
  EXPECT_GE(points[1].fp_experiments, points[2].fp_experiments);
  EXPECT_LE(points[0].fn_experiments, points[1].fn_experiments);
  EXPECT_LT(points[1].fn_experiments, points[2].fn_experiments);
  // At w=0 every run alarms constantly: all FP, no FN.
  EXPECT_EQ(points[0].fp_experiments, 30u);
  EXPECT_EQ(points[0].fn_experiments, 0u);
}

TEST(Experiment, PinnedTable2CellForFixedSeed) {
  // Regression pin guarding the parallel rewrite: one Table-2 cell
  // (aircraft pitch x bias, 10 runs, base seed 2022, Table-2 metric
  // options) must keep producing exactly these counts and delay means.
  // The values were recorded from the serial implementation; the ordered
  // reduction keeps them bit-identical for every thread count.
  const SimulatorCase scase = simulator_case("aircraft_pitch");
  MetricsOptions opts;
  opts.warmup = 100;
  opts.fp_threshold = 0.01;
  const CellResult cell = run_cell({.scase = scase,
                                    .attack = AttackKind::kBias,
                                    .runs = 10,
                                    .base_seed = 2022,
                                    .metrics = opts,
                                    .threads = 1})
                              .value();
  EXPECT_EQ(cell.fp_adaptive, 6u);
  EXPECT_EQ(cell.fp_fixed, 0u);
  EXPECT_EQ(cell.dm_adaptive, 0u);
  EXPECT_EQ(cell.dm_fixed, 7u);
  EXPECT_EQ(cell.fn_adaptive, 0u);
  EXPECT_EQ(cell.fn_fixed, 3u);
  EXPECT_DOUBLE_EQ(cell.mean_delay_adaptive, 0.0);
  EXPECT_DOUBLE_EQ(cell.mean_delay_fixed, 276.0 / 7.0);
}

TEST(Experiment, RunCellBitIdenticalAcrossThreadCounts) {
  // The parallel rewrite's core contract: counts AND floating-point delay
  // means are bit-identical for every thread count.
  const SimulatorCase scase = simulator_case("vehicle_turning");
  MetricsOptions opts;
  opts.warmup = 100;
  opts.fp_threshold = 0.01;
  ExperimentSpec spec{.scase = scase,
                      .attack = AttackKind::kBias,
                      .runs = 12,
                      .base_seed = 2022,
                      .metrics = opts,
                      .threads = 1};
  const CellResult serial = run_cell(spec).value();
  spec.threads = 8;
  const CellResult threaded = run_cell(spec).value();
  EXPECT_EQ(serial, threaded);
  spec.threads = 3;
  const CellResult odd = run_cell(spec).value();
  EXPECT_EQ(serial, odd);
}

TEST(Experiment, SweepBitIdenticalAcrossThreadCounts) {
  SimulatorCase scase = simulator_case("series_rlc");
  scase.attack_duration = 15;
  MetricsOptions opts;
  opts.warmup = 100;
  SweepSpec spec{.scase = scase,
                 .attack = AttackKind::kBias,
                 .windows = {0, 5, 20, 40, 100},
                 .runs = 12,
                 .base_seed = 9,
                 .metrics = opts,
                 .threads = 1};
  const auto serial = fixed_window_sweep(spec).value();
  spec.threads = 8;
  const auto threaded = fixed_window_sweep(spec).value();
  EXPECT_EQ(serial, threaded);
}

TEST(Experiment, SpecCheckRejectsDegenerateInputs) {
  const SimulatorCase scase = simulator_case("vehicle_turning");
  const auto no_runs =
      run_cell({.scase = scase, .attack = AttackKind::kBias, .runs = 0});
  EXPECT_FALSE(no_runs.is_ok());
  EXPECT_EQ(no_runs.status().code(), StatusCode::kInvalidInput);

  SimulatorCase bad = scase;
  bad.tau = Vec{};  // dimension mismatch → SimulatorCase::check failure
  EXPECT_FALSE(run_cell({.scase = bad, .attack = AttackKind::kBias}).is_ok());

  const auto no_windows = fixed_window_sweep(
      {.scase = scase, .attack = AttackKind::kBias, .windows = {}, .runs = 5});
  EXPECT_FALSE(no_windows.is_ok());
  EXPECT_EQ(no_windows.status().code(), StatusCode::kInvalidInput);
}

TEST(Experiment, ReduceCellMatchesManualAccumulation) {
  // The pure reduction helper shared by the serial and parallel paths:
  // counts come from the flags, delay means divide by the *detected* run
  // count only, and run order fixes the floating-point sum.
  const SimulatorCase scase = simulator_case("vehicle_turning");
  std::vector<CellRunOutcome> outcomes(3);
  outcomes[0].adaptive.fp_experiment = true;
  outcomes[0].adaptive.detection_delay = 4;
  outcomes[0].fixed.deadline_miss = true;
  outcomes[0].fixed.false_negative = true;
  outcomes[1].adaptive.detection_delay = 7;
  outcomes[1].fixed.detection_delay = 9;
  outcomes[2].adaptive.deadline_miss = true;

  const CellResult cell = reduce_cell(scase, AttackKind::kDelay, outcomes);
  EXPECT_EQ(cell.simulator, "vehicle_turning");
  EXPECT_EQ(cell.attack, AttackKind::kDelay);
  EXPECT_EQ(cell.runs, 3u);
  EXPECT_EQ(cell.fp_adaptive, 1u);
  EXPECT_EQ(cell.fp_fixed, 0u);
  EXPECT_EQ(cell.dm_adaptive, 1u);
  EXPECT_EQ(cell.dm_fixed, 1u);
  EXPECT_EQ(cell.fn_fixed, 1u);
  EXPECT_DOUBLE_EQ(cell.mean_delay_adaptive, (4.0 + 7.0) / 2.0);
  EXPECT_DOUBLE_EQ(cell.mean_delay_fixed, 9.0);
  // No detected runs -> mean 0, not a division by zero.
  const CellResult empty = reduce_cell(scase, AttackKind::kBias, {});
  EXPECT_EQ(empty.runs, 0u);
  EXPECT_EQ(empty.mean_delay_adaptive, 0.0);
}

TEST(Experiment, SweepIsDeterministic) {
  SimulatorCase scase = simulator_case("vehicle_turning");
  scase.attack_duration = 15;
  const SweepSpec spec{.scase = scase,
                       .attack = AttackKind::kBias,
                       .windows = {0, 10},
                       .runs = 5,
                       .base_seed = 3};
  const auto a = fixed_window_sweep(spec).value();
  const auto b = fixed_window_sweep(spec).value();
  EXPECT_EQ(a[0].fp_experiments, b[0].fp_experiments);
  EXPECT_EQ(a[1].fn_experiments, b[1].fn_experiments);
}

}  // namespace
}  // namespace awd::core
