// Unit tests for the evaluation metrics (§6 definitions).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::core {
namespace {

sim::Trace trace_with(std::size_t len, std::initializer_list<std::size_t> adaptive,
                      std::initializer_list<std::size_t> fixed,
                      std::size_t deadline_at_each_step = 5) {
  sim::Trace t;
  for (std::size_t i = 0; i < len; ++i) {
    sim::StepRecord r;
    r.t = i;
    r.deadline = deadline_at_each_step;
    for (std::size_t a : adaptive) {
      if (a == i) r.adaptive_alarm = true;
    }
    for (std::size_t f : fixed) {
      if (f == i) r.fixed_alarm = true;
    }
    t.push(std::move(r));
  }
  return t;
}

TEST(Metrics, FpRateCountsOnlyCleanSteps) {
  // 20 steps, attack [10, 15): clean = 15 steps; alarms at 2 (clean) and 11
  // (attacked, excluded).
  const sim::Trace t = trace_with(20, {2, 11}, {});
  EXPECT_DOUBLE_EQ(false_positive_rate(t, 10, 15, Strategy::kAdaptive), 1.0 / 15.0);
  EXPECT_DOUBLE_EQ(false_positive_rate(t, 10, 15, Strategy::kFixed), 0.0);
}

TEST(Metrics, WarmupExcluded) {
  const sim::Trace t = trace_with(20, {2}, {});
  EXPECT_DOUBLE_EQ(false_positive_rate(t, 10, 15, Strategy::kAdaptive, /*warmup=*/5),
                   0.0);
}

TEST(Metrics, PostAttackGuardExcluded) {
  // Alarm at 16, right after the attack ends at 15: guarded out.
  const sim::Trace t = trace_with(25, {16}, {});
  EXPECT_DOUBLE_EQ(false_positive_rate(t, 10, 15, Strategy::kAdaptive, 0, /*guard=*/3),
                   0.0);
  EXPECT_GT(false_positive_rate(t, 10, 15, Strategy::kAdaptive, 0, 0), 0.0);
}

TEST(Metrics, DetectionDelayAndDeadline) {
  // Attack at 10, deadline 5 (from the trace), adaptive alarm at 13 (in
  // time), fixed alarm at 17 (missed).
  const sim::Trace t = trace_with(30, {13}, {17});
  const RunMetrics ma = compute_metrics(t, 10, 10, Strategy::kAdaptive);
  EXPECT_EQ(ma.first_alarm_after_onset.value(), 13u);
  EXPECT_EQ(ma.detection_delay.value(), 3u);
  EXPECT_EQ(ma.deadline_at_onset, 5u);
  EXPECT_FALSE(ma.deadline_miss);
  EXPECT_FALSE(ma.false_negative);

  const RunMetrics mf = compute_metrics(t, 10, 10, Strategy::kFixed);
  EXPECT_TRUE(mf.deadline_miss);
  EXPECT_FALSE(mf.false_negative);
}

TEST(Metrics, AlarmExactlyAtDeadlineIsInTime) {
  const sim::Trace t = trace_with(30, {15}, {16});
  EXPECT_FALSE(compute_metrics(t, 10, 10, Strategy::kAdaptive).deadline_miss);
  EXPECT_TRUE(compute_metrics(t, 10, 10, Strategy::kFixed).deadline_miss);
}

TEST(Metrics, NeverDetectedIsFalseNegativeAndMiss) {
  const sim::Trace t = trace_with(30, {}, {});
  const RunMetrics m = compute_metrics(t, 10, 10, Strategy::kAdaptive);
  EXPECT_TRUE(m.false_negative);
  EXPECT_TRUE(m.deadline_miss);
  EXPECT_FALSE(m.detection_delay.has_value());
}

TEST(Metrics, FpExperimentThreshold) {
  // 4 alarms in 20 clean steps = 20% > 10%.
  const sim::Trace t = trace_with(30, {1, 2, 3, 4}, {});
  MetricsOptions opts;
  opts.fp_threshold = 0.1;
  EXPECT_TRUE(compute_metrics(t, 25, 5, Strategy::kAdaptive, opts).fp_experiment);
  opts.fp_threshold = 0.5;
  EXPECT_FALSE(compute_metrics(t, 25, 5, Strategy::kAdaptive, opts).fp_experiment);
}

TEST(Metrics, AttackOutsideTraceThrows) {
  const sim::Trace t = trace_with(10, {}, {});
  EXPECT_THROW((void)compute_metrics(t, 10, 5, Strategy::kAdaptive),
               std::invalid_argument);
}

TEST(Metrics, EmptyCleanRangeGivesZeroRate) {
  const sim::Trace t = trace_with(10, {1}, {});
  EXPECT_DOUBLE_EQ(false_positive_rate(t, 0, 10, Strategy::kAdaptive), 0.0);
}

}  // namespace
}  // namespace awd::core
