// Tests for the fixed-size thread pool and deterministic parallel_for.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace awd::core {
namespace {

TEST(Parallel, ResolveThreadsExplicitWins) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(Parallel, ResolveThreadsAutoIsPositive) { EXPECT_GE(resolve_threads(0), 1u); }

TEST(Parallel, EveryIndexVisitedExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> visits(97);
    parallel_for(97, threads, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Parallel, ZeroAndTinyIterationCounts) {
  std::size_t calls = 0;
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // More workers than items: clamped, single item still runs exactly once.
  std::atomic<int> one{0};
  parallel_for(1, 8, [&](std::size_t) { ++one; });
  EXPECT_EQ(one.load(), 1);
}

TEST(Parallel, SlotWritesMatchSerialLoop) {
  // The contract the experiment runners rely on: fn(i) writing slot i
  // produces the same vector for every thread count.
  auto fill = [](std::size_t threads) {
    std::vector<double> out(64);
    parallel_for(out.size(), threads, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.25 + 0.5;
    });
    return out;
  };
  const std::vector<double> serial = fill(1);
  EXPECT_EQ(fill(2), serial);
  EXPECT_EQ(fill(5), serial);
  EXPECT_EQ(fill(8), serial);
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [&](std::size_t i) {
                     if (i == 9) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Serial path propagates too.
  EXPECT_THROW(parallel_for(4, 1, [&](std::size_t) { throw std::logic_error("x"); }),
               std::logic_error);
}

TEST(Parallel, PoolIsReusableAcrossRuns) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int round = 0; round < 25; ++round) {
    std::vector<std::atomic<int>> visits(31);
    pool.run(visits.size(), [&](std::size_t i) { ++visits[i]; });
    long total = 0;
    for (auto& v : visits) total += v.load();
    ASSERT_EQ(total, 31) << "round " << round;
  }
}

TEST(Parallel, PoolRecoversAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run(8, [](std::size_t) { throw std::runtime_error("once"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.run(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
}  // namespace awd::core
