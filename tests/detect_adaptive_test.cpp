// Unit and property tests for the Adaptive Detector (§4) and the window
// adjustment protocol, including the complementary-detection no-escape
// invariant of §4.2.1.
#include "detect/adaptive.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "detect/fixed.hpp"

namespace awd::detect {
namespace {

models::DiscreteLti identity_model() {
  // A = 1, B = 0: the residual of a logged estimate stream x̄ is
  // |x̄_{t-1} - x̄_t|, handy for crafting exact residual sequences.
  models::DiscreteLti m;
  m.A = linalg::Matrix{{1.0}};
  m.B = linalg::Matrix{{0.0}};
  m.dt = 1.0;
  m.name = "identity";
  return m;
}

/// Log a stream whose residuals are exactly `z` (z[0] is forced to 0).
DataLogger logger_with_residuals(const std::vector<double>& z, std::size_t w_m) {
  DataLogger log(identity_model(), w_m);
  double est = 0.0;
  (void)log.log(0, Vec{est}, Vec{0.0});
  for (std::size_t t = 1; t < z.size(); ++t) {
    est += z[t];  // residual |est_{t-1} - est_t| = z[t]
    (void)log.log(t, Vec{est}, Vec{0.0});
  }
  return log;
}

/// Drive logger and detector together (the real pipeline's interleaving:
/// the logger is at step t when the detector evaluates step t) with a
/// prescribed residual stream and per-step deadline schedule.
struct StreamRun {
  bool detected = false;
  std::size_t evaluations = 0;
};
StreamRun run_stream(const std::vector<double>& z, std::size_t w_m, double tau,
                     const std::vector<std::size_t>& deadline_schedule) {
  DataLogger log(identity_model(), w_m);
  AdaptiveDetector det(Vec{tau}, w_m);
  StreamRun out;
  double est = 0.0;
  for (std::size_t t = 0; t < z.size(); ++t) {
    if (t > 0) est += z[t];
    (void)log.log(t, Vec{est}, Vec{0.0});
    const std::size_t deadline = deadline_schedule[t % deadline_schedule.size()];
    const AdaptiveDecision d = det.step(log, t, deadline);
    out.evaluations += d.evaluations;
    if (d.any_alarm()) out.detected = true;
  }
  return out;
}

TEST(Adaptive, WindowFollowsDeadlineClamped) {
  AdaptiveDetector det(Vec{1e9}, 10);
  const DataLogger log = logger_with_residuals(std::vector<double>(30, 0.0), 10);
  EXPECT_EQ(det.step(log, 20, 3).window, 3u);
  EXPECT_EQ(det.step(log, 21, 99).window, 10u);  // clamped to w_m
  EXPECT_EQ(det.step(log, 22, 0).window, 0u);
}

TEST(Adaptive, AlarmsWhenMeanExceedsTau) {
  std::vector<double> z(30, 0.0);
  z[20] = 1.0;  // spike
  const DataLogger log = logger_with_residuals(z, 10);
  AdaptiveDetector det(Vec{0.2}, 10);
  // Window 2 at t=20: mean = 1/3 > 0.2.
  const AdaptiveDecision d = det.step(log, 20, 2);
  EXPECT_TRUE(d.alarm);
  EXPECT_TRUE(d.any_alarm());
  EXPECT_NEAR(d.mean_residual[0], 1.0 / 3.0, 1e-12);
}

TEST(Adaptive, GrowingWindowNeedsNoComplementarySweep) {
  const DataLogger log = logger_with_residuals(std::vector<double>(30, 0.0), 10);
  AdaptiveDetector det(Vec{1.0}, 10);
  (void)det.step(log, 20, 2);
  const AdaptiveDecision d = det.step(log, 21, 8);  // grow 2 -> 8
  EXPECT_EQ(d.evaluations, 1u);  // only the current-step test
  EXPECT_FALSE(d.complementary_alarm);
}

TEST(Adaptive, ShrinkTriggersComplementarySweeps) {
  // Drive logger and detector together so the ring buffer is positioned as
  // in the real pipeline, then shrink 10 -> 4 at t=31.
  DataLogger log(identity_model(), 12);
  AdaptiveDetector det(Vec{1.0}, 12);
  for (std::size_t t = 0; t <= 30; ++t) {
    (void)log.log(t, Vec{0.0}, Vec{0.0});
    (void)det.step(log, t, 10);
  }
  (void)log.log(31, Vec{0.0}, Vec{0.0});
  const AdaptiveDecision d = det.step(log, 31, 4);  // shrink to 4
  // Virtual times: [31 - 10 - 1 + 4, 30] = [24, 30] -> 7 sweeps + current.
  EXPECT_EQ(d.window, 4u);
  EXPECT_EQ(d.evaluations, 8u);
}

TEST(Adaptive, ComplementaryDetectionCatchesEscapingSpike) {
  // Residual spike at t=22 against tau=0.15: a size-10 window (11 points)
  // hides it (mean 1/11 = 0.0909) but a size-4 window (5 points) reveals it
  // (mean 1/5 = 0.2).  When the deadline collapses at t=30, the current
  // size-4 window [26,30] misses the spike; only the complementary sweeps
  // over the escaped region [23, 29] can catch it.
  DataLogger log(identity_model(), 12);
  AdaptiveDetector det(Vec{0.15}, 12);
  double est = 0.0;
  AdaptiveDecision d;
  for (std::size_t t = 0; t <= 29; ++t) {
    if (t == 22) est += 1.0;  // the spike
    (void)log.log(t, Vec{est}, Vec{0.0});
    d = det.step(log, t, 10);
    EXPECT_FALSE(d.any_alarm()) << "size-10 window must hide the spike, t=" << t;
  }
  (void)log.log(30, Vec{est}, Vec{0.0});
  d = det.step(log, 30, 4);
  EXPECT_FALSE(d.alarm);  // current window itself is clean
  EXPECT_TRUE(d.complementary_alarm) << "spike escaped the shrinking window";
  EXPECT_TRUE(d.any_alarm());
}

// Property: for ANY deadline sequence, every residual spike is covered by at
// least one evaluated window (no data point escapes detection, §4.2.1).
TEST(Adaptive, NoEscapeProperty) {
  const std::size_t w_m = 12;
  const std::size_t len = 80;
  // Every schedule below contains windows of size <= 2, and a unit spike
  // against tau = 0.3 alarms in any window of size <= 2 (mean 1/3 > 0.3).
  const double spike_tau = 0.3;

  // Adversarial deadline schedules: oscillating, collapsing, random-ish.
  const std::vector<std::vector<std::size_t>> schedules = {
      {10, 10, 10, 2, 10, 2, 10, 2},
      {12, 0, 12, 0, 12, 0},
      {9, 7, 5, 3, 1, 0, 12, 9, 7, 5, 3, 1},
      {4, 11, 2, 8, 0, 6, 1, 12, 3},
  };

  for (std::size_t which = 0; which < schedules.size(); ++which) {
    for (std::size_t spike_at = 20; spike_at < 70; spike_at += 7) {
      std::vector<double> z(len, 0.0);
      z[spike_at] = 1.0;  // any window of size <= 1/0.45 - 1 sees mean > tau
      const StreamRun run = run_stream(z, w_m, spike_tau, schedules[which]);
      // The protocol guarantees the point is evaluated by *some* window of
      // the (small) current size while it is still logged — either the
      // current-step test or a complementary sweep.
      EXPECT_TRUE(run.detected) << "schedule " << which << ", spike at " << spike_at;
    }
  }
}

TEST(Adaptive, ResetRestartsProtocol) {
  const DataLogger log = logger_with_residuals(std::vector<double>(30, 0.0), 10);
  AdaptiveDetector det(Vec{1.0}, 10);
  (void)det.step(log, 20, 10);
  det.reset();
  EXPECT_EQ(det.previous_window(), 0u);
  // After reset, a small deadline is not a "shrink": no sweeps.
  const AdaptiveDecision d = det.step(log, 21, 2);
  EXPECT_EQ(d.evaluations, 1u);
}

TEST(Adaptive, Validation) {
  EXPECT_THROW(AdaptiveDetector(Vec{}, 10), std::invalid_argument);
  EXPECT_THROW(AdaptiveDetector(Vec{0.1}, 0), std::invalid_argument);
}

TEST(FixedDetector, MatchesManualWindowTest) {
  std::vector<double> z(30, 0.0);
  z[20] = 0.9;
  const DataLogger log = logger_with_residuals(z, 10);
  const FixedWindowDetector det(Vec{0.2}, 3);
  EXPECT_TRUE(det.step(log, 20).alarm);   // mean 0.9/4 = 0.225 > 0.2
  EXPECT_FALSE(det.step(log, 24).alarm);  // spike left the window
  EXPECT_EQ(det.window(), 3u);
  EXPECT_THROW(FixedWindowDetector(Vec{}, 3), std::invalid_argument);
}

TEST(WindowDecision, ThresholdDimensionValidated) {
  const DataLogger log = logger_with_residuals(std::vector<double>(10, 0.0), 5);
  EXPECT_THROW((void)evaluate_window(log, 5, 2, Vec{0.1, 0.1}), std::invalid_argument);
}

}  // namespace
}  // namespace awd::detect
