// Unit tests for the CUSUM and chi-squared baseline detectors.
#include <gtest/gtest.h>

#include <stdexcept>

#include "detect/chi2.hpp"
#include "detect/cusum.hpp"

namespace awd::detect {
namespace {

models::DiscreteLti identity_model() {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{1.0}};
  m.B = linalg::Matrix{{0.0}};
  m.dt = 1.0;
  m.name = "identity";
  return m;
}

TEST(Cusum, AccumulatesAboveDrift) {
  CusumDetector det(Vec{0.1}, Vec{0.5});
  // Residual 0.3 per step: statistic grows by 0.2 per step, alarms at step 3.
  EXPECT_FALSE(det.update(Vec{0.3}).alarm);  // S = 0.2
  EXPECT_FALSE(det.update(Vec{0.3}).alarm);  // S = 0.4
  EXPECT_TRUE(det.update(Vec{0.3}).alarm);   // S = 0.6 > 0.5
}

TEST(Cusum, DecaysBelowDriftAndClampsAtZero) {
  CusumDetector det(Vec{0.5}, Vec{10.0});
  (void)det.update(Vec{1.0});  // S = 0.5
  (void)det.update(Vec{0.0});  // S = 0 (clamped)
  EXPECT_EQ(det.statistic()[0], 0.0);
}

TEST(Cusum, ResetOnAlarmRestartsStatistic) {
  CusumDetector det(Vec{0.0}, Vec{0.5}, /*reset_on_alarm=*/true);
  EXPECT_TRUE(det.update(Vec{1.0}).alarm);
  EXPECT_EQ(det.statistic()[0], 0.0);
  CusumDetector keep(Vec{0.0}, Vec{0.5}, /*reset_on_alarm=*/false);
  EXPECT_TRUE(keep.update(Vec{1.0}).alarm);
  EXPECT_EQ(keep.statistic()[0], 1.0);
}

TEST(Cusum, PerDimensionIndependent) {
  CusumDetector det(Vec{0.1, 0.1}, Vec{0.5, 100.0}, false);
  const CusumDecision d = det.update(Vec{1.0, 1.0});
  EXPECT_TRUE(d.alarm);  // dim 0 crossed; dim 1 nowhere near
  EXPECT_NEAR(d.statistic[1], 0.9, 1e-12);
}

TEST(Cusum, StepReadsLoggerResidual) {
  DataLogger log(identity_model(), 5);
  (void)log.log(0, Vec{0.0}, Vec{0.0});
  (void)log.log(1, Vec{2.0}, Vec{0.0});  // residual 2.0
  CusumDetector det(Vec{0.5}, Vec{1.0});
  EXPECT_TRUE(det.step(log, 1).alarm);
}

TEST(Cusum, Validation) {
  EXPECT_THROW(CusumDetector(Vec{}, Vec{}), std::invalid_argument);
  EXPECT_THROW(CusumDetector(Vec{0.1}, Vec{0.1, 0.2}), std::invalid_argument);
  CusumDetector det(Vec{0.1}, Vec{0.5});
  EXPECT_THROW((void)det.update(Vec{0.1, 0.2}), std::invalid_argument);
}

TEST(Chi2, InstantaneousStatistic) {
  const Chi2Detector det(Vec{0.1, 0.2}, 3.0);
  // g = (0.2/0.1)^2 + (0.2/0.2)^2 = 4 + 1 = 5.
  EXPECT_DOUBLE_EQ(det.normalized_square(Vec{0.2, 0.2}), 5.0);
}

TEST(Chi2, WindowedMeanOverLogger) {
  DataLogger log(identity_model(), 10);
  double est = 0.0;
  (void)log.log(0, Vec{est}, Vec{0.0});
  for (std::size_t t = 1; t <= 5; ++t) {
    est += 0.1;  // residual 0.1 each step
    (void)log.log(t, Vec{est}, Vec{0.0});
  }
  const Chi2Detector det(Vec{0.1}, 0.9, /*window=*/2);
  const Chi2Decision d = det.step(log, 5);
  EXPECT_NEAR(d.statistic, 1.0, 1e-12);  // each normalized square = 1
  EXPECT_TRUE(d.alarm);
}

// Boundary regimes: alarms are strict (> threshold), so landing *exactly*
// on the threshold must stay silent — the conservative tie-break both
// detectors share with the paper's window test.
TEST(Cusum, ThresholdExactlyHitDoesNotAlarm) {
  CusumDetector det(Vec{0.0}, Vec{0.5}, /*reset_on_alarm=*/false);
  EXPECT_FALSE(det.update(Vec{0.5}).alarm);  // S = 0.5 == h
  EXPECT_DOUBLE_EQ(det.statistic()[0], 0.5);
  EXPECT_TRUE(det.update(Vec{1e-9}).alarm);  // any positive excess crosses
}

TEST(Cusum, ZeroVarianceChannelStaysSilentUnderZeroResidual) {
  // A dead (zero-variance) channel with zero drift: the statistic must sit
  // exactly at 0 forever, never drifting into an alarm through accumulation.
  CusumDetector det(Vec{0.0, 0.1}, Vec{0.5, 0.5}, /*reset_on_alarm=*/false);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(det.update(Vec{0.0, 0.05}).alarm);
  }
  EXPECT_DOUBLE_EQ(det.statistic()[0], 0.0);
  EXPECT_DOUBLE_EQ(det.statistic()[1], 0.0);  // 0.05 < drift, clamped each step
}

TEST(Chi2, ThresholdExactlyHitDoesNotAlarm) {
  DataLogger log(identity_model(), 5);
  (void)log.log(0, Vec{0.0}, Vec{0.0});
  (void)log.log(1, Vec{0.1}, Vec{0.0});  // residual exactly 0.1 = sigma
  const Chi2Detector det(Vec{0.1}, /*threshold=*/1.0, /*window=*/0);
  const Chi2Decision d = det.step(log, 1);
  EXPECT_DOUBLE_EQ(d.statistic, 1.0);  // normalized square lands on threshold
  EXPECT_FALSE(d.alarm);
}

TEST(Chi2, ZeroVarianceSigmaIsRejectedPerChannel) {
  // sigma = 0 would make 1/sigma^2 infinite: the constructor must refuse a
  // zero-variance channel no matter where it sits in the vector.
  EXPECT_THROW(Chi2Detector(Vec{0.1, 0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Chi2Detector(Vec{0.1, -0.2}, 1.0), std::invalid_argument);
}

TEST(Chi2, SingleStepWindowUsesOnlyTheCurrentResidual) {
  DataLogger log(identity_model(), 10);
  (void)log.log(0, Vec{0.0}, Vec{0.0});
  (void)log.log(1, Vec{1.0}, Vec{0.0});  // residual 1.0 (huge)
  (void)log.log(2, Vec{1.0}, Vec{0.0});  // residual 0.0
  const Chi2Detector inst(Vec{0.1}, 0.5, /*window=*/0);
  // window = 0 is instantaneous: the huge residual at t=1 must not leak
  // into the statistic at t=2.
  EXPECT_TRUE(inst.step(log, 1).alarm);
  const Chi2Decision at2 = inst.step(log, 2);
  EXPECT_DOUBLE_EQ(at2.statistic, 0.0);
  EXPECT_FALSE(at2.alarm);
}

TEST(Chi2, WindowClampsAtStreamStartInsteadOfUnderflowing) {
  DataLogger log(identity_model(), 10);
  (void)log.log(0, Vec{0.2}, Vec{0.0});  // first entry: residual defined as 0
  const Chi2Detector det(Vec{0.1}, 0.5, /*window=*/4);
  // t=0 with window 4: only one retained point; must not underflow t - w.
  const Chi2Decision d = det.step(log, 0);
  EXPECT_DOUBLE_EQ(d.statistic, 0.0);
  EXPECT_FALSE(d.alarm);
}

TEST(Chi2, Validation) {
  EXPECT_THROW(Chi2Detector(Vec{}, 1.0), std::invalid_argument);
  EXPECT_THROW(Chi2Detector(Vec{0.0}, 1.0), std::invalid_argument);
  const Chi2Detector det(Vec{0.1}, 1.0);
  EXPECT_THROW((void)det.normalized_square(Vec{0.1, 0.1}), std::invalid_argument);
  DataLogger log(identity_model(), 5);
  EXPECT_THROW((void)det.step(log, 3), std::out_of_range);
}

}  // namespace
}  // namespace awd::detect
