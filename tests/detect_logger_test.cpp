// Unit tests for the Data Logger (§5): buffer / hold / release semantics.
#include "detect/logger.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace awd::detect {
namespace {

models::DiscreteLti scalar_model() {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{2.0}};
  m.B = linalg::Matrix{{1.0}};
  m.dt = 0.1;
  m.name = "scalar";
  return m;
}

TEST(Logger, CapacityIsMaxWindowPlusSeed) {
  DataLogger log(scalar_model(), 5);
  // w_m + 1 points inside a maximal window plus the trusted seed.
  EXPECT_EQ(log.capacity(), 7u);
  EXPECT_EQ(log.max_window(), 5u);
  EXPECT_TRUE(log.empty());
}

TEST(Logger, FirstEntryHasZeroResidual) {
  DataLogger log(scalar_model(), 5);
  const LogEntry& e = log.log(0, Vec{3.0}, Vec{1.0});
  EXPECT_EQ(e.residual[0], 0.0);
  EXPECT_EQ(e.predicted[0], 3.0);
}

TEST(Logger, ResidualUsesPreviousEstimateAndControl) {
  DataLogger log(scalar_model(), 5);
  (void)log.log(0, Vec{3.0}, Vec{1.0});
  const LogEntry& e = log.log(1, Vec{6.5}, Vec{0.0});
  // x̃_1 = 2*3 + 1*1 = 7; z = |7 - 6.5| = 0.5.
  EXPECT_DOUBLE_EQ(e.predicted[0], 7.0);
  EXPECT_DOUBLE_EQ(e.residual[0], 0.5);
}

TEST(Logger, ReleaseDropsOldEntries) {
  DataLogger log(scalar_model(), 3);  // capacity 5
  for (std::size_t t = 0; t < 10; ++t) (void)log.log(t, Vec{0.0}, Vec{0.0});
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.earliest(), 5u);
  EXPECT_EQ(log.latest(), 9u);
  EXPECT_FALSE(log.has(4));
  EXPECT_TRUE(log.has(5));
  EXPECT_THROW((void)log.entry(4), std::out_of_range);
}

TEST(Logger, ContiguityEnforced) {
  DataLogger log(scalar_model(), 3);
  (void)log.log(0, Vec{0.0}, Vec{0.0});
  EXPECT_THROW((void)log.log(2, Vec{0.0}, Vec{0.0}), std::invalid_argument);
  EXPECT_THROW((void)log.log(0, Vec{0.0}, Vec{0.0}), std::invalid_argument);
  EXPECT_NO_THROW((void)log.log(1, Vec{0.0}, Vec{0.0}));
}

TEST(Logger, FirstEntryMayStartAnywhere) {
  DataLogger log(scalar_model(), 3);
  EXPECT_NO_THROW((void)log.log(42, Vec{0.0}, Vec{0.0}));
  EXPECT_EQ(log.earliest(), 42u);
}

TEST(Logger, WindowMeanInclusiveWindow) {
  DataLogger log(scalar_model(), 10);
  // Estimates chosen so residuals are 0, 1, 2, 3, ... :
  // x̄_{t} = 2 x̄_{t-1} - t  gives z_t = t (control 0).
  double est = 1.0;
  (void)log.log(0, Vec{est}, Vec{0.0});
  for (std::size_t t = 1; t <= 6; ++t) {
    est = 2.0 * est - static_cast<double>(t);
    (void)log.log(t, Vec{est}, Vec{0.0});
  }
  // Window [4, 6] -> residuals {4, 5, 6}, mean 5.
  EXPECT_DOUBLE_EQ(log.window_mean(6, 2)[0], 5.0);
  // Window size 0 -> just the residual at 6.
  EXPECT_DOUBLE_EQ(log.window_mean(6, 0)[0], 6.0);
}

TEST(Logger, WindowMeanClampsAtStreamStart) {
  DataLogger log(scalar_model(), 10);
  (void)log.log(0, Vec{1.0}, Vec{0.0});
  (void)log.log(1, Vec{2.0}, Vec{0.0});  // residual |2*1 - 2| = 0
  // Window of size 5 at t=1 only has 2 points; mean over what exists.
  EXPECT_NO_THROW((void)log.window_mean(1, 5));
  EXPECT_THROW((void)log.window_mean(7, 2), std::out_of_range);
}

TEST(Logger, TrustedStateIsJustOutsideTheWindow) {
  DataLogger log(scalar_model(), 5);
  for (std::size_t t = 0; t < 7; ++t) {
    (void)log.log(t, Vec{static_cast<double>(t)}, Vec{0.0});
  }
  // At t=6 with window 2, the seed is x̄_{6-2-1} = x̄_3.
  const auto seed = log.trusted_state(6, 2);
  ASSERT_TRUE(seed.has_value());
  EXPECT_DOUBLE_EQ((*seed)[0], 3.0);
  // Too early in the stream: no trusted point yet.
  EXPECT_FALSE(log.trusted_state(1, 2).has_value());
}

TEST(Logger, TrustedStateForMaxWindowIsOldestRetained) {
  DataLogger log(scalar_model(), 5);
  for (std::size_t t = 0; t < 20; ++t) {
    (void)log.log(t, Vec{static_cast<double>(t)}, Vec{0.0});
  }
  // At t=19 with window w_m=5: seed is t-6 = 13, the oldest retained entry.
  const auto seed = log.trusted_state(19, 5);
  ASSERT_TRUE(seed.has_value());
  EXPECT_DOUBLE_EQ((*seed)[0], 13.0);
  EXPECT_EQ(log.earliest(), 13u);
}

TEST(Logger, ResetForgets) {
  DataLogger log(scalar_model(), 3);
  (void)log.log(0, Vec{0.0}, Vec{0.0});
  log.reset();
  EXPECT_TRUE(log.empty());
  EXPECT_THROW((void)log.earliest(), std::logic_error);
  EXPECT_NO_THROW((void)log.log(5, Vec{0.0}, Vec{0.0}));
}

TEST(Logger, WindowMeanStartupUnderflowIsGuarded) {
  // w > t_end must clamp to the stream start, never wrap around.
  DataLogger log(scalar_model(), 10);
  (void)log.log(0, Vec{1.0}, Vec{0.0});
  EXPECT_NO_THROW((void)log.window_mean(0, 10));
  (void)log.log(1, Vec{2.0}, Vec{0.0});
  EXPECT_NO_THROW((void)log.window_mean(1, 10));
  // Maximal window at every early step.
  for (std::size_t t = 2; t < 8; ++t) {
    (void)log.log(t, Vec{0.0}, Vec{0.0});
    EXPECT_NO_THROW((void)log.window_mean(t, 10)) << t;
  }
}

TEST(Logger, TrustedStateStartupUnderflowIsGuarded) {
  // t < w + 1 has no point outside the window yet — must be nullopt for
  // every (t, w) combination near the stream start, not an underflow.
  DataLogger log(scalar_model(), 5);
  (void)log.log(0, Vec{1.0}, Vec{0.0});
  for (std::size_t w = 0; w <= 5; ++w) {
    EXPECT_FALSE(log.trusted_state(0, w).has_value()) << w;
  }
  EXPECT_FALSE(log.trusted_state(1, 5).has_value());
}

TEST(Logger, QuarantinesNonFiniteEstimate) {
  DataLogger log(scalar_model(), 5);
  (void)log.log(0, Vec{1.0}, Vec{0.0});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const LogEntry& e = log.log(1, Vec{nan}, Vec{0.0});
  EXPECT_TRUE(e.quarantined);
  EXPECT_TRUE(e.estimate.is_finite());   // sanitized to the previous estimate
  EXPECT_DOUBLE_EQ(e.estimate[0], 1.0);
  EXPECT_DOUBLE_EQ(e.residual[0], 0.0);  // contributes nothing
  EXPECT_EQ(log.quarantined_count(), 1u);
  // The following entry predicts from the sanitized value and stays finite.
  const LogEntry& next = log.log(2, Vec{2.0}, Vec{0.0});
  EXPECT_FALSE(next.quarantined);
  EXPECT_TRUE(next.residual.is_finite());
}

TEST(Logger, QuarantinesNonFiniteControl) {
  DataLogger log(scalar_model(), 5);
  (void)log.log(0, Vec{1.0}, Vec{0.0});
  const LogEntry& e =
      log.log(1, Vec{2.0}, Vec{std::numeric_limits<double>::infinity()});
  EXPECT_TRUE(e.quarantined);
  EXPECT_TRUE(e.control.is_finite());
  // Next prediction uses the zeroed control, not Inf.
  const LogEntry& next = log.log(2, Vec{4.0}, Vec{0.0});
  EXPECT_TRUE(next.predicted.is_finite());
}

TEST(Logger, WindowMeanSkipsQuarantinedEntries) {
  DataLogger log(scalar_model(), 10);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Residuals: t1..t3 = {2, poisoned, 4}; the NaN step must not zero-bias
  // nor poison the mean.
  (void)log.log(0, Vec{1.0}, Vec{0.0});
  (void)log.log(1, Vec{0.0}, Vec{0.0});   // z = |2*1 - 0| = 2
  (void)log.log(2, Vec{nan}, Vec{0.0});   // quarantined
  (void)log.log(3, Vec{-4.0}, Vec{0.0});  // prev sanitized estimate 0 → z = 4
  const Vec mean = log.window_mean(3, 2);  // window {1, 2, 3}, valid {1, 3}
  EXPECT_DOUBLE_EQ(mean[0], 3.0);
}

TEST(Logger, AllQuarantinedWindowMeanIsZero) {
  DataLogger log(scalar_model(), 3);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  (void)log.log(0, Vec{nan}, Vec{0.0});
  (void)log.log(1, Vec{nan}, Vec{0.0});
  const Vec mean = log.window_mean(1, 1);
  EXPECT_DOUBLE_EQ(mean[0], 0.0);
  EXPECT_TRUE(mean.is_finite());
}

TEST(Logger, TrustedStateSkipsQuarantinedSeed) {
  DataLogger log(scalar_model(), 5);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t t = 0; t < 3; ++t) (void)log.log(t, Vec{1.0}, Vec{0.0});
  (void)log.log(3, Vec{nan}, Vec{0.0});  // quarantined
  for (std::size_t t = 4; t < 7; ++t) (void)log.log(t, Vec{1.0}, Vec{0.0});
  // Seed for (t=6, w=2) is step 3 — quarantined, so no seed.
  EXPECT_FALSE(log.trusted_state(6, 2).has_value());
  // Seed for (t=6, w=1) is step 4 — clean.
  EXPECT_TRUE(log.trusted_state(6, 1).has_value());
}

TEST(Logger, LogCheckedReportsContractViolationsWithoutThrowing) {
  DataLogger log(scalar_model(), 3);
  EXPECT_TRUE(log.log_checked(0, Vec{1.0}, Vec{0.0}).is_ok());
  // Non-contiguous step.
  const core::Status gap = log.log_checked(5, Vec{1.0}, Vec{0.0});
  EXPECT_EQ(gap.code(), core::StatusCode::kOutOfRange);
  EXPECT_EQ(log.latest(), 0u);  // nothing stored on error
  // Dimension mismatches.
  EXPECT_EQ(log.log_checked(1, Vec{1.0, 2.0}, Vec{0.0}).code(),
            core::StatusCode::kInvalidInput);
  EXPECT_EQ(log.log_checked(1, Vec{1.0}, Vec{0.0, 1.0}).code(),
            core::StatusCode::kInvalidInput);
  // Quarantine is not an error.
  const core::Status q =
      log.log_checked(1, Vec{std::numeric_limits<double>::quiet_NaN()}, Vec{0.0});
  EXPECT_TRUE(q.is_ok());
  EXPECT_TRUE(log.entry(1).quarantined);
}

TEST(Logger, Validation) {
  EXPECT_THROW(DataLogger(scalar_model(), 0), std::invalid_argument);
  DataLogger log(scalar_model(), 3);
  EXPECT_THROW((void)log.log(0, Vec{0.0, 1.0}, Vec{0.0}), std::invalid_argument);
  EXPECT_THROW((void)log.log(0, Vec{0.0}, Vec{0.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace awd::detect
