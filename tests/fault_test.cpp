// Unit tests for the fault-injection subsystem: Status/Result plumbing,
// FaultPlan scheduling and seeded generation, FaultInjector semantics, and
// the HealthMonitor degradation state machine.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/status.hpp"
#include "fault/health.hpp"

namespace awd::fault {
namespace {

using core::Status;
using core::StatusCode;

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s{StatusCode::kUnavailable, "no sample"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "no sample");
  EXPECT_EQ(core::to_string(StatusCode::kBudgetExceeded), "budget_exceeded");
}

TEST(Status, ResultValueAndFallback) {
  const core::Result<int> ok = 42;
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  const core::Result<int> err = Status{StatusCode::kInvalidInput, "bad"};
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(err.value_or(7), 7);
}

// -------------------------------------------------------------- FaultPlan --

TEST(FaultPlan, EmptyPlanHasNoFaults) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.sensor_fault_at(0), FaultKind::kNone);
  EXPECT_FALSE(plan.deadline_budget_exhausted_at(0));
}

TEST(FaultPlan, EventCoversItsWindow) {
  FaultPlan plan;
  plan.add({10, 3, FaultKind::kDropout});  // burst loss over [10, 13)
  EXPECT_EQ(plan.sensor_fault_at(9), FaultKind::kNone);
  EXPECT_EQ(plan.sensor_fault_at(10), FaultKind::kDropout);
  EXPECT_EQ(plan.sensor_fault_at(12), FaultKind::kDropout);
  EXPECT_EQ(plan.sensor_fault_at(13), FaultKind::kNone);
}

TEST(FaultPlan, LatestAddedEventWins) {
  FaultPlan plan;
  plan.add({10, 10, FaultKind::kDropout});
  plan.add({12, 1, FaultKind::kCorruptNaN});  // layered over the burst
  EXPECT_EQ(plan.sensor_fault_at(11), FaultKind::kDropout);
  EXPECT_EQ(plan.sensor_fault_at(12), FaultKind::kCorruptNaN);
  EXPECT_EQ(plan.sensor_fault_at(13), FaultKind::kDropout);
}

TEST(FaultPlan, DeadlineBudgetIsSeparateFromSensorPath) {
  FaultPlan plan;
  plan.add({5, 2, FaultKind::kDeadlineBudget});
  EXPECT_EQ(plan.sensor_fault_at(5), FaultKind::kNone);
  EXPECT_TRUE(plan.deadline_budget_exhausted_at(5));
  EXPECT_TRUE(plan.deadline_budget_exhausted_at(6));
  EXPECT_FALSE(plan.deadline_budget_exhausted_at(7));
}

TEST(FaultPlan, AddRejectsInvalidEvents) {
  FaultPlan plan;
  EXPECT_THROW(plan.add({0, 1, FaultKind::kNone}), std::invalid_argument);
  EXPECT_THROW(plan.add({0, 0, FaultKind::kDropout}), std::invalid_argument);
}

TEST(FaultPlan, RandomPlanIsDeterministicInSeed) {
  const FaultPlan a = FaultPlan::random(1234, 500);
  const FaultPlan b = FaultPlan::random(1234, 500);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
  }
  // A different seed produces a different plan (overwhelmingly likely for
  // 500 steps at the default rate).
  const FaultPlan c = FaultPlan::random(1235, 500);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].start != c.events()[i].start ||
              a.events()[i].kind != c.events()[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomPlanRespectsOptions) {
  FaultPlanOptions opts;
  opts.fault_rate = 1.0;  // every step faulted
  opts.max_burst = 1;
  opts.deadline_faults = false;
  const FaultPlan plan = FaultPlan::random(7, 50, opts);
  EXPECT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events()) {
    EXPECT_NE(e.kind, FaultKind::kDeadlineBudget);
    EXPECT_EQ(e.duration, 1u);
  }
  EXPECT_TRUE(FaultPlan::random(7, 50, {.fault_rate = 0.0}).empty());
  EXPECT_THROW((void)FaultPlan::random(7, 50, {.fault_rate = 1.5}), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::random(7, 50, {.max_burst = 0}), std::invalid_argument);
}

// ---------------------------------------------------------- FaultInjector --

TEST(Injector, DropoutRemovesTheSample) {
  FaultPlan plan;
  plan.add({1, 1, FaultKind::kDropout});
  FaultInjector inj(std::move(plan));
  std::optional<Vec> s = Vec{1.0};
  EXPECT_EQ(inj.apply_sensor(0, s), FaultKind::kNone);
  EXPECT_TRUE(s.has_value());
  s = Vec{2.0};
  EXPECT_EQ(inj.apply_sensor(1, s), FaultKind::kDropout);
  EXPECT_FALSE(s.has_value());
  EXPECT_EQ(inj.counters().count(FaultKind::kDropout), 1u);
  EXPECT_EQ(inj.counters().total(), 1u);
}

TEST(Injector, CorruptionPoisonsEveryElement) {
  FaultPlan plan;
  plan.add({0, 1, FaultKind::kCorruptNaN});
  plan.add({1, 1, FaultKind::kCorruptInf});
  FaultInjector inj(std::move(plan));
  std::optional<Vec> s = Vec{1.0, 2.0};
  EXPECT_EQ(inj.apply_sensor(0, s), FaultKind::kCorruptNaN);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(std::isnan((*s)[0]));
  EXPECT_TRUE(std::isnan((*s)[1]));
  s = Vec{1.0, 2.0};
  EXPECT_EQ(inj.apply_sensor(1, s), FaultKind::kCorruptInf);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(std::isinf((*s)[0]));
  EXPECT_TRUE(std::isinf((*s)[1]));
}

TEST(Injector, StuckAtLastRepeatsTheLastDelivery) {
  FaultPlan plan;
  plan.add({2, 2, FaultKind::kStuckAtLast});
  FaultInjector inj(std::move(plan));
  std::optional<Vec> s = Vec{1.0};
  (void)inj.apply_sensor(0, s);
  s = Vec{2.0};
  (void)inj.apply_sensor(1, s);
  s = Vec{3.0};
  EXPECT_EQ(inj.apply_sensor(2, s), FaultKind::kStuckAtLast);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ((*s)[0], 2.0);  // last delivered value, not the fresh one
  s = Vec{4.0};
  (void)inj.apply_sensor(3, s);
  EXPECT_DOUBLE_EQ((*s)[0], 2.0);  // still stuck
}

TEST(Injector, StuckWithNoPriorDeliveryIsADropout) {
  FaultPlan plan;
  plan.add({0, 1, FaultKind::kStuckAtLast});
  FaultInjector inj(std::move(plan));
  std::optional<Vec> s = Vec{1.0};
  EXPECT_EQ(inj.apply_sensor(0, s), FaultKind::kStuckAtLast);
  EXPECT_FALSE(s.has_value());
}

TEST(Injector, CorruptionDoesNotRefreshStuckMemory) {
  FaultPlan plan;
  plan.add({1, 1, FaultKind::kCorruptNaN});
  plan.add({2, 1, FaultKind::kStuckAtLast});
  FaultInjector inj(std::move(plan));
  std::optional<Vec> s = Vec{5.0};
  (void)inj.apply_sensor(0, s);  // good delivery: 5.0
  s = Vec{6.0};
  (void)inj.apply_sensor(1, s);  // corrupted: must not become the memory
  s = Vec{7.0};
  (void)inj.apply_sensor(2, s);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ((*s)[0], 5.0);  // last *good* value
}

TEST(Injector, ResetClearsCountersAndMemory) {
  FaultPlan plan;
  plan.add({0, 1, FaultKind::kDropout});
  FaultInjector inj(std::move(plan));
  std::optional<Vec> s = Vec{1.0};
  (void)inj.apply_sensor(0, s);
  EXPECT_EQ(inj.counters().total(), 1u);
  inj.reset();
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(Injector, DeadlineBudgetCountsOnlyWhenExhausted) {
  FaultPlan plan;
  plan.add({3, 1, FaultKind::kDeadlineBudget});
  FaultInjector inj(std::move(plan));
  EXPECT_FALSE(inj.deadline_budget_exhausted(2));
  EXPECT_TRUE(inj.deadline_budget_exhausted(3));
  EXPECT_EQ(inj.counters().count(FaultKind::kDeadlineBudget), 1u);
}

TEST(Fault, KindNames) {
  EXPECT_EQ(to_string(FaultKind::kNone), "none");
  EXPECT_EQ(to_string(FaultKind::kDropout), "dropout");
  EXPECT_EQ(to_string(FaultKind::kCorruptNaN), "corrupt_nan");
  EXPECT_EQ(to_string(FaultKind::kCorruptInf), "corrupt_inf");
  EXPECT_EQ(to_string(FaultKind::kStuckAtLast), "stuck_at_last");
  EXPECT_EQ(to_string(FaultKind::kDeadlineBudget), "deadline_budget");
}

// ---------------------------------------------------------- HealthMonitor --

TEST(Health, StartsNominalAndDegradesOnFirstFault) {
  HealthMonitor hm;
  EXPECT_EQ(hm.state(), HealthState::kNominal);
  EXPECT_EQ(hm.step(FaultKind::kNone, false), HealthState::kNominal);
  EXPECT_EQ(hm.step(FaultKind::kDropout, true), HealthState::kDegraded);
}

TEST(Health, FaultStreakReachesFailsafe) {
  HealthMonitor hm({.failsafe_after = 3, .recover_after = 2});
  EXPECT_EQ(hm.step(FaultKind::kDropout, true), HealthState::kDegraded);
  EXPECT_EQ(hm.step(FaultKind::kDropout, true), HealthState::kDegraded);
  EXPECT_EQ(hm.step(FaultKind::kDropout, true), HealthState::kFailsafe);
}

TEST(Health, RecoveryClimbsOneLevelPerCleanStreak) {
  HealthMonitor hm({.failsafe_after = 2, .recover_after = 3});
  (void)hm.step(FaultKind::kDropout, true);
  (void)hm.step(FaultKind::kDropout, true);
  ASSERT_EQ(hm.state(), HealthState::kFailsafe);
  // Two clean steps are not enough.
  (void)hm.step(FaultKind::kNone, false);
  EXPECT_EQ(hm.step(FaultKind::kNone, false), HealthState::kFailsafe);
  // Third clean step: one level up, to DEGRADED only.
  EXPECT_EQ(hm.step(FaultKind::kNone, false), HealthState::kDegraded);
  // Another full clean streak: back to NOMINAL.
  (void)hm.step(FaultKind::kNone, false);
  (void)hm.step(FaultKind::kNone, false);
  EXPECT_EQ(hm.step(FaultKind::kNone, false), HealthState::kNominal);
}

TEST(Health, FaultDuringRecoveryResetsTheCleanStreak) {
  HealthMonitor hm({.failsafe_after = 10, .recover_after = 3});
  (void)hm.step(FaultKind::kDropout, true);
  (void)hm.step(FaultKind::kNone, false);
  (void)hm.step(FaultKind::kNone, false);
  (void)hm.step(FaultKind::kCorruptNaN, true);  // streak broken
  (void)hm.step(FaultKind::kNone, false);
  (void)hm.step(FaultKind::kNone, false);
  EXPECT_EQ(hm.state(), HealthState::kDegraded);
  EXPECT_EQ(hm.step(FaultKind::kNone, false), HealthState::kNominal);
}

TEST(Health, DegradedFlagAloneCountsAsFault) {
  // A deadline fallback without any sensor fault must still degrade.
  HealthMonitor hm;
  EXPECT_EQ(hm.step(FaultKind::kNone, true), HealthState::kDegraded);
  EXPECT_EQ(hm.degraded_steps(), 1u);
  EXPECT_EQ(hm.total_faults(), 0u);
}

TEST(Health, CountersPerKind) {
  HealthMonitor hm;
  (void)hm.step(FaultKind::kDropout, true);
  (void)hm.step(FaultKind::kDropout, true);
  (void)hm.step(FaultKind::kCorruptInf, true);
  EXPECT_EQ(hm.fault_count(FaultKind::kDropout), 2u);
  EXPECT_EQ(hm.fault_count(FaultKind::kCorruptInf), 1u);
  EXPECT_EQ(hm.total_faults(), 3u);
  EXPECT_EQ(hm.steps(), 3u);
  hm.reset();
  EXPECT_EQ(hm.state(), HealthState::kNominal);
  EXPECT_EQ(hm.total_faults(), 0u);
}

TEST(Health, ValidatesConfig) {
  EXPECT_THROW(HealthMonitor({.failsafe_after = 0}), std::invalid_argument);
  EXPECT_THROW(HealthMonitor({.failsafe_after = 1, .recover_after = 0}),
               std::invalid_argument);
  EXPECT_EQ(to_string(HealthState::kFailsafe), "failsafe");
}

}  // namespace
}  // namespace awd::fault
