// Forensics concurrency suite (ctest label: forensics): the flight
// recorder's record/snapshot race and the event log's concurrent appends.
// These tests exist primarily for the TSan CI leg — the recorder's mutex is
// what keeps a crash-path dump racing a shard writer from reading torn
// frames, and TSan proves it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace awd {
namespace {

using obs::EventKind;
using obs::EventLog;
using obs::FlightFrame;
using obs::FlightRecorder;

FlightFrame frame_at(std::uint64_t t) {
  FlightFrame f;
  f.t = t;
  // Derive every payload field from t so a torn read is *detectable*, not
  // just a race report: a consistent frame always satisfies these identities.
  f.residual_norm = static_cast<double>(t) * 0.5;
  f.detect_stat = static_cast<double>(t) * 0.25;
  f.deadline = static_cast<std::uint32_t>(t % 97);
  f.window = static_cast<std::uint32_t>(t % 41);
  return f;
}

TEST(FlightRecorderConcurrency, SnapshotsAreConsistentWhileWriterRecords) {
  FlightRecorder recorder(64);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.record_frame(frame_at(t++));
    }
  });

  std::vector<FlightFrame> out;
  for (int iter = 0; iter < 500; ++iter) {
    recorder.snapshot(out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const FlightFrame& f = out[i];
      // Each frame is internally consistent (no torn payload)...
      ASSERT_EQ(f.residual_norm, static_cast<double>(f.t) * 0.5);
      ASSERT_EQ(f.detect_stat, static_cast<double>(f.t) * 0.25);
      ASSERT_EQ(f.deadline, f.t % 97);
      ASSERT_EQ(f.window, f.t % 41);
      // ...and the snapshot is a contiguous oldest-first window.
      if (i > 0) {
        ASSERT_EQ(f.t, out[i - 1].t + 1);
      }
    }
  }

  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(recorder.size(), std::min<std::size_t>(recorder.recorded(), 64));
}

TEST(FlightRecorderConcurrency, ClearRacingWriterLeavesARecordableRing) {
  FlightRecorder recorder(32);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.record_frame(frame_at(t++));
    }
  });

  std::vector<FlightFrame> out;
  for (int iter = 0; iter < 200; ++iter) {
    recorder.clear();
    recorder.snapshot(out);
    ASSERT_LE(out.size(), recorder.capacity());
  }

  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(EventLogConcurrency, ConcurrentAppendsAllLandOrCountAsDrops) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "observability compiled out";

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  EventLog log;
  log.set_capacity(1024);

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&log, w] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        log.log(EventKind::kAlarm, /*stream=*/static_cast<std::uint64_t>(w) + 1,
                /*shard=*/static_cast<std::uint64_t>(w), /*step=*/i);
      }
    });
  }
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(log.logged(), kThreads * kPerThread);
  const std::vector<obs::Event> events = log.collect();
  EXPECT_EQ(events.size(), 1024u);
  EXPECT_EQ(log.dropped(), kThreads * kPerThread - events.size());
  for (const obs::Event& e : events) {
    EXPECT_GE(e.stream, 1u);
    EXPECT_LE(e.stream, static_cast<std::uint64_t>(kThreads));
    EXPECT_LT(e.step, kPerThread);
  }
  obs::set_enabled(was_enabled);
}

}  // namespace
}  // namespace awd
