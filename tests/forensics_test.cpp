// Forensics suite (ctest label: forensics): the flight recorder ring, the
// structured event log, the .awdfr dump codec, deterministic alarm replay,
// and the StreamEngine's automatic dump/introspection surface
// (DESIGN.md §15).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/ckpt.hpp"
#include "core/detection_system.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "serve/forensics.hpp"
#include "serve/stream_engine.hpp"
#include "sim/trace.hpp"

namespace awd {
namespace {

using core::AttackKind;
using core::DetectionSystem;
using core::SimulatorCase;
using core::simulator_case;
using obs::EventKind;
using obs::EventLog;
using obs::FlightFrame;
using obs::FlightRecorder;
using serve::DumpReason;
using serve::ForensicsDump;
using serve::ReplayReport;
using serve::StreamEngine;
using serve::StreamEngineOptions;
using serve::StreamId;

/// Cap a case's run length, re-fitting the attack window (mirrors the SIMD
/// differential suite's helper).
void cap_case(SimulatorCase& scase, std::size_t max_steps) {
  scase.steps = std::min(scase.steps, max_steps);
  if (scase.attack_start + scase.attack_duration > scase.steps) {
    scase.attack_start = std::min(scase.attack_start, scase.steps / 2);
    scase.attack_duration =
        std::min(scase.attack_duration, scase.steps - scase.attack_start);
  }
  if (scase.attack_start > 0) {
    scase.replay_record_start =
        std::min(scase.replay_record_start, scase.attack_start - 1);
  }
}

FlightFrame frame_at(std::uint64_t t, double stat = 0.5) {
  FlightFrame f;
  f.t = t;
  f.residual_norm = 0.125 * static_cast<double>(t + 1);
  f.detect_stat = stat;
  f.deadline = 7;
  f.window = 5;
  f.flags = obs::kFrameAttackActive;
  f.health = 0;
  return f;
}

// ------------------------------------------------------------ FlightRecorder

TEST(FlightRecorder, RingEvictsOldestAndKeepsContiguousTail) {
  FlightRecorder recorder(4);
  std::vector<FlightFrame> out;
  for (std::uint64_t t = 0; t < 10; ++t) recorder.record_frame(frame_at(t));
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  recorder.snapshot(out);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].t, 6u + i);
}

TEST(FlightRecorder, SnapshotBelowCapacityIsOldestFirst) {
  FlightRecorder recorder(8);
  std::vector<FlightFrame> out;
  recorder.snapshot(out);
  EXPECT_TRUE(out.empty());
  for (std::uint64_t t = 0; t < 3; ++t) recorder.record_frame(frame_at(t));
  recorder.snapshot(out);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].t, i);
}

TEST(FlightRecorder, ClearForgetsFramesButNotLifetimeCount) {
  FlightRecorder recorder(4);
  for (std::uint64_t t = 0; t < 3; ++t) recorder.record_frame(frame_at(t));
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  std::vector<FlightFrame> out;
  recorder.snapshot(out);
  EXPECT_TRUE(out.empty());
}

TEST(FlightRecorder, CapacityClampedToAtLeastOne) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.record_frame(frame_at(1));
  recorder.record_frame(frame_at(2));
  std::vector<FlightFrame> out;
  recorder.snapshot(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].t, 2u);
}

TEST(FlightRecorder, MakeFrameDistillsEveryStepRecordField) {
  sim::StepRecord rec;
  rec.t = 42;
  rec.residual_norm = 0.75;
  rec.detect_stat = 1.25;
  rec.deadline = 9;
  rec.window = 6;
  rec.adaptive_alarm = true;
  rec.fixed_alarm = false;
  rec.attack_active = true;
  rec.unsafe = false;
  rec.sample_missing = true;
  rec.estimate_fallback = true;
  rec.residual_quarantined = true;
  rec.deadline_fallback = false;
  rec.fault = fault::FaultKind::kDropout;
  rec.health = fault::HealthState::kDegraded;

  const FlightFrame f = obs::make_frame(rec);
  EXPECT_EQ(f.t, 42u);
  EXPECT_EQ(f.residual_norm, 0.75);
  EXPECT_EQ(f.detect_stat, 1.25);
  EXPECT_EQ(f.deadline, 9u);
  EXPECT_EQ(f.window, 6u);
  EXPECT_TRUE(f.flag(obs::kFrameAdaptiveAlarm));
  EXPECT_FALSE(f.flag(obs::kFrameFixedAlarm));
  EXPECT_TRUE(f.flag(obs::kFrameAttackActive));
  EXPECT_FALSE(f.flag(obs::kFrameUnsafe));
  EXPECT_TRUE(f.flag(obs::kFrameSampleMissing));
  EXPECT_TRUE(f.flag(obs::kFrameEstimateFallback));
  EXPECT_TRUE(f.flag(obs::kFrameResidualQuarantined));
  EXPECT_FALSE(f.flag(obs::kFrameDeadlineFallback));
  EXPECT_EQ(f.fault, static_cast<std::uint8_t>(fault::FaultKind::kDropout));
  EXPECT_EQ(f.health, static_cast<std::uint8_t>(fault::HealthState::kDegraded));
}

TEST(FlightRecorder, BitIdenticalComparesDoublesAsBitPatterns) {
  FlightFrame a = frame_at(1);
  FlightFrame b = a;
  EXPECT_TRUE(obs::frames_bit_identical(a, b));
  b.detect_stat = std::nextafter(b.detect_stat, 2.0);
  EXPECT_FALSE(obs::frames_bit_identical(a, b));
  // NaN-safe: two frames carrying the same NaN bit pattern are identical
  // (operator== on doubles would say otherwise).
  a.residual_norm = std::nan("");
  b = a;
  EXPECT_TRUE(obs::frames_bit_identical(a, b));
}

// ----------------------------------------------------------------- EventLog

/// Event-log collection follows the metrics gate; these tests force it on
/// and restore the previous state (skip when compiled out).
class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    if (!obs::enabled()) GTEST_SKIP() << "observability compiled out";
    log_.clear();
  }
  void TearDown() override { obs::set_enabled(was_enabled_); }

  EventLog log_;

 private:
  bool was_enabled_ = true;
};

TEST_F(EventLogTest, KeepsMostRecentEventsAndCountsDrops) {
  log_.set_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log_.log(EventKind::kAlarm, /*stream=*/i, /*shard=*/0, /*step=*/i);
  }
  EXPECT_EQ(log_.logged(), 10u);
  EXPECT_EQ(log_.dropped(), 6u);
  const std::vector<obs::Event> events = log_.collect();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].stream, 6u + i);  // oldest first, most recent kept
  }
  // Timestamps are monotone.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST_F(EventLogTest, DisabledLogIsANoOp) {
  obs::set_enabled(false);
  log_.log(EventKind::kAlarm, 1, 0, 1);
  obs::set_enabled(true);
  EXPECT_EQ(log_.logged(), 0u);
  EXPECT_TRUE(log_.collect().empty());
}

TEST_F(EventLogTest, JsonlRendersOneObjectPerLineWithStableNames) {
  log_.log(EventKind::kAlarm, 3, 1, 120, 5, 9, "adaptive");
  log_.log(EventKind::kHealthTransition, 3, 1, 130, 0, 1, "degraded");
  const std::string text = obs::events_jsonl(log_.collect());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"event\": \"alarm\""), std::string::npos);
  EXPECT_NE(text.find("\"event\": \"health_transition\""), std::string::npos);
  EXPECT_NE(text.find("\"stream\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"step\": 120"), std::string::npos);
  EXPECT_NE(text.find("\"detail\": \"adaptive\""), std::string::npos);
}

TEST(EventLogNames, EveryKindHasAStableName) {
  const EventKind kinds[] = {EventKind::kAlarm,     EventKind::kHealthTransition,
                             EventKind::kAdmissionReject, EventKind::kQuarantine,
                             EventKind::kCheckpoint, EventKind::kRestore,
                             EventKind::kDump,       EventKind::kCrashFlush};
  for (const EventKind k : kinds) {
    EXPECT_STRNE(obs::event_kind_name(k), "unknown");
  }
}

// --------------------------------------------------------------- dump codec

/// Run a standalone pipeline for `steps` steps and capture every frame.
ForensicsDump captured_dump(const serve::StreamSpec& spec, std::size_t steps,
                            std::size_t depth) {
  ForensicsDump dump;
  dump.reason = DumpReason::kManual;
  dump.stream = 1;
  dump.spec = spec;
  DetectionSystem system(spec.scase, spec.attack, spec.seed, spec.options);
  FlightRecorder recorder(depth);
  sim::StepRecord rec;
  for (std::size_t t = 0; t < steps; ++t) {
    system.step_into(rec);
    recorder.record(rec);
  }
  recorder.snapshot(dump.frames);
  dump.steps_done = steps;
  dump.trigger_step = steps - 1;
  dump.ts_ns = 12345;
  return dump;
}

serve::StreamSpec small_spec(const char* plant = "series_rlc",
                             AttackKind attack = AttackKind::kBias,
                             std::uint64_t seed = 3) {
  serve::StreamSpec spec;
  spec.scase = simulator_case(plant);
  cap_case(spec.scase, 160);
  spec.attack = attack;
  spec.seed = seed;
  spec.steps = spec.scase.steps;
  spec.metrics.post_attack_guard = spec.scase.max_window;
  return spec;
}

TEST(ForensicsCodec, DumpRoundTripsThroughBytes) {
  const serve::StreamSpec spec = small_spec();
  ForensicsDump dump = captured_dump(spec, 120, 64);
  dump.reason = DumpReason::kAlarm;
  dump.shard = 2;
  dump.trigger_step = 100;

  const std::vector<std::uint8_t> bytes = serve::encode_dump(dump);
  core::Result<ForensicsDump> decoded = serve::decode_dump(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  const ForensicsDump& got = decoded.value();
  EXPECT_EQ(got.reason, DumpReason::kAlarm);
  EXPECT_EQ(got.stream, dump.stream);
  EXPECT_EQ(got.shard, 2u);
  EXPECT_EQ(got.trigger_step, 100u);
  EXPECT_EQ(got.steps_done, 120u);
  EXPECT_EQ(got.ts_ns, 12345u);
  EXPECT_EQ(got.spec.scase.key, spec.scase.key);
  EXPECT_EQ(got.spec.attack, spec.attack);
  EXPECT_EQ(got.spec.seed, spec.seed);
  EXPECT_EQ(got.spec.steps, spec.steps);
  ASSERT_EQ(got.frames.size(), dump.frames.size());
  for (std::size_t i = 0; i < got.frames.size(); ++i) {
    EXPECT_TRUE(obs::frames_bit_identical(got.frames[i], dump.frames[i]))
        << "frame " << i;
  }
}

TEST(ForensicsCodec, RejectsCorruptTruncatedAndInconsistentImages) {
  const ForensicsDump dump = captured_dump(small_spec(), 60, 32);
  const std::vector<std::uint8_t> bytes = serve::encode_dump(dump);

  // Bit flip anywhere in the payload: the per-section CRC (or the spec
  // fingerprint) catches it.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(serve::decode_dump(flipped).is_ok());

  // Truncation.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + 40);
  EXPECT_FALSE(serve::decode_dump(truncated).is_ok());

  // Structurally inconsistent: a gap in the frame sequence.
  ForensicsDump gapped = dump;
  ASSERT_GE(gapped.frames.size(), 3u);
  gapped.frames.erase(gapped.frames.begin() + 1);
  const core::Result<ForensicsDump> r = serve::decode_dump(serve::encode_dump(gapped));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), core::StatusCode::kDataLoss);

  // Trigger outside the captured window.
  ForensicsDump bad_trigger = dump;
  bad_trigger.trigger_step = dump.steps_done + 10;
  EXPECT_FALSE(serve::decode_dump(serve::encode_dump(bad_trigger)).is_ok());
}

// ------------------------------------------------------------------- replay

TEST(ForensicsReplay, ManualDumpReplaysBitIdentically) {
  const ForensicsDump dump = captured_dump(small_spec(), 120, 64);
  core::Result<ReplayReport> replayed = serve::replay_dump(dump);
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().message();
  const ReplayReport& rep = replayed.value();
  EXPECT_EQ(rep.steps_replayed, 120u);
  EXPECT_EQ(rep.frames_compared, dump.frames.size());
  EXPECT_TRUE(rep.frames_identical) << rep.mismatch;
  EXPECT_TRUE(rep.trigger_reproduced);
  EXPECT_TRUE(rep.verified());
}

TEST(ForensicsReplay, DetectsATamperedFrame) {
  ForensicsDump dump = captured_dump(small_spec(), 80, 40);
  ASSERT_FALSE(dump.frames.empty());
  dump.frames[dump.frames.size() / 2].detect_stat += 1e-9;
  core::Result<ReplayReport> replayed = serve::replay_dump(dump);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_FALSE(replayed.value().frames_identical);
  EXPECT_FALSE(replayed.value().verified());
  EXPECT_FALSE(replayed.value().mismatch.empty());
}

// ------------------------------------------------------------- StreamEngine

/// An attacked spec that reliably alarms (bias attack on the Table-1 case;
/// a 300-step cap leaves 150 attacked steps, far beyond the detection delay).
serve::StreamSpec alarming_spec(std::uint64_t seed = 7) {
  serve::StreamSpec spec;
  spec.scase = simulator_case("aircraft_pitch");
  cap_case(spec.scase, 300);
  spec.attack = AttackKind::kBias;
  spec.seed = seed;
  spec.steps = spec.scase.steps;
  spec.metrics.post_attack_guard = spec.scase.max_window;
  return spec;
}

TEST(EngineForensics, AutoDumpOnAlarmReplaysBitIdentically) {
  StreamEngine engine({.threads = 2, .flight_recorder_depth = 256});
  core::Result<StreamId> id = engine.submit(alarming_spec());
  ASSERT_TRUE(id.is_ok());
  engine.run_to_completion();

  const serve::EngineIntrospection intro = engine.introspect();
  ASSERT_GE(intro.dumps_written, 1u) << "bias attack did not trigger an alarm dump";
  EXPECT_EQ(intro.dumps_skipped, 0u);

  core::Result<std::vector<std::uint8_t>> image = engine.last_dump(id.value());
  ASSERT_TRUE(image.is_ok()) << image.status().message();
  core::Result<ForensicsDump> dump = serve::decode_dump(image.value());
  ASSERT_TRUE(dump.is_ok()) << dump.status().message();
  EXPECT_EQ(dump.value().reason, DumpReason::kAlarm);
  EXPECT_EQ(dump.value().stream, id.value());

  core::Result<ReplayReport> replayed = serve::replay_dump(dump.value());
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().message();
  EXPECT_TRUE(replayed.value().verified()) << replayed.value().mismatch;
  EXPECT_GT(replayed.value().trigger_stat, 0.0)
      << "the trigger step must carry a live window statistic";
}

TEST(EngineForensics, AutoDumpsAreThreadCountInvariant) {
  std::vector<std::uint8_t> serial_image;
  std::vector<std::uint8_t> pooled_image;
  for (int pass = 0; pass < 2; ++pass) {
    StreamEngine engine({.threads = pass == 0 ? std::size_t{1} : std::size_t{4},
                         .flight_recorder_depth = 128});
    core::Result<StreamId> id = engine.submit(alarming_spec());
    ASSERT_TRUE(id.is_ok());
    engine.run_to_completion();
    core::Result<std::vector<std::uint8_t>> image = engine.last_dump(id.value());
    ASSERT_TRUE(image.is_ok()) << image.status().message();
    // The meta timestamp is wall-clock; compare the decoded content instead
    // of raw bytes.
    core::Result<ForensicsDump> dump = serve::decode_dump(image.value());
    ASSERT_TRUE(dump.is_ok());
    (pass == 0 ? serial_image : pooled_image) = serve::encode_dump([&] {
      ForensicsDump d = dump.value();
      d.ts_ns = 0;
      d.shard = 0;
      return d;
    }());
  }
  EXPECT_EQ(serial_image, pooled_image)
      << "forensic dump content depends on the thread count";
}

TEST(EngineForensics, ManualDumpErrorsAreTyped) {
  StreamEngine with_recorder({.threads = 1, .flight_recorder_depth = 16});
  EXPECT_EQ(with_recorder.dump_stream(99).status().code(),
            core::StatusCode::kOutOfRange);
  EXPECT_EQ(with_recorder.last_dump(99).status().code(), core::StatusCode::kOutOfRange);

  StreamEngine disabled({.threads = 1, .flight_recorder_depth = 0});
  core::Result<StreamId> id = disabled.submit(small_spec());
  ASSERT_TRUE(id.is_ok());
  disabled.step_all();
  EXPECT_EQ(disabled.dump_stream(id.value()).status().code(),
            core::StatusCode::kUnavailable);
  // Triggers on an undumpable stream are counted, never fatal.
  disabled.run_to_completion();
  EXPECT_EQ(disabled.introspect().dumps_written, 0u);
}

TEST(EngineForensics, ManualMidRunDumpReplays) {
  StreamEngine engine({.threads = 1, .flight_recorder_depth = 64});
  core::Result<StreamId> id = engine.submit(small_spec());
  ASSERT_TRUE(id.is_ok());
  for (int k = 0; k < 50; ++k) engine.step_all();
  core::Result<std::vector<std::uint8_t>> image = engine.dump_stream(id.value());
  ASSERT_TRUE(image.is_ok()) << image.status().message();
  core::Result<ForensicsDump> dump = serve::decode_dump(image.value());
  ASSERT_TRUE(dump.is_ok()) << dump.status().message();
  EXPECT_EQ(dump.value().reason, DumpReason::kManual);
  EXPECT_EQ(dump.value().steps_done, 50u);
  core::Result<ReplayReport> replayed = serve::replay_dump(dump.value());
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_TRUE(replayed.value().verified()) << replayed.value().mismatch;
}

TEST(EngineForensics, DumpAllStreamsWritesReadableFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "awd_forensics_dump_all";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  StreamEngine engine({.threads = 2, .flight_recorder_depth = 32});
  ASSERT_TRUE(engine.submit(small_spec("series_rlc", AttackKind::kBias, 1)).is_ok());
  ASSERT_TRUE(engine.submit(small_spec("dc_motor", AttackKind::kNone, 2)).is_ok());
  for (int k = 0; k < 30; ++k) engine.step_all();

  const std::size_t written = engine.dump_all_streams(dir.string());
  EXPECT_EQ(written, 2u);
  std::size_t decoded = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".awdfr");
    core::Result<std::vector<std::uint8_t>> bytes =
        core::ckpt::read_file(entry.path().string());
    ASSERT_TRUE(bytes.is_ok());
    core::Result<ForensicsDump> dump = serve::decode_dump(bytes.value());
    ASSERT_TRUE(dump.is_ok()) << entry.path() << ": " << dump.status().message();
    EXPECT_EQ(dump.value().reason, DumpReason::kCrash);
    EXPECT_EQ(dump.value().steps_done, 30u);
    ++decoded;
  }
  EXPECT_EQ(decoded, 2u);
  std::filesystem::remove_all(dir);
}

TEST(EngineForensics, RecorderSlotIsClearedForReusedSlots) {
  // One slot, two consecutive streams: the second stream's dump must not
  // contain frames from the first.
  StreamEngine engine({.threads = 1, .max_streams = 1, .flight_recorder_depth = 64});
  core::Result<StreamId> first = engine.submit(small_spec("series_rlc", AttackKind::kNone, 1));
  ASSERT_TRUE(first.is_ok());
  engine.run_to_completion();
  ASSERT_TRUE(engine.drain(first.value()).is_ok());

  core::Result<StreamId> second = engine.submit(small_spec("series_rlc", AttackKind::kNone, 2));
  ASSERT_TRUE(second.is_ok());
  for (int k = 0; k < 10; ++k) engine.step_all();
  core::Result<std::vector<std::uint8_t>> image = engine.dump_stream(second.value());
  ASSERT_TRUE(image.is_ok());
  core::Result<ForensicsDump> dump = serve::decode_dump(image.value());
  ASSERT_TRUE(dump.is_ok()) << dump.status().message();
  ASSERT_EQ(dump.value().frames.size(), 10u);
  EXPECT_EQ(dump.value().frames.front().t, 0u);
  EXPECT_EQ(dump.value().stream, second.value());
}

// ------------------------------------------------------------ introspection

TEST(EngineIntrospect, TalliesMatchEngineState) {
  StreamEngine engine({.threads = 2, .flight_recorder_depth = 32});
  ASSERT_TRUE(engine.submit(small_spec("series_rlc", AttackKind::kNone, 1)).is_ok());
  ASSERT_TRUE(engine.submit(small_spec("dc_motor", AttackKind::kNone, 2)).is_ok());
  for (int k = 0; k < 20; ++k) engine.step_all();

  const serve::EngineIntrospection intro = engine.introspect();
  EXPECT_EQ(intro.counters.running, 2u);
  EXPECT_EQ(intro.recorder_depth, 32u);
  ASSERT_EQ(intro.shard_info.size(), engine.shards());
  std::size_t streams = 0;
  std::uint64_t steps = 0;
  std::size_t frames = 0;
  for (const serve::ShardIntrospection& s : intro.shard_info) {
    streams += s.streams;
    steps += s.steps_done;
    frames += s.recorder_frames;
  }
  EXPECT_EQ(streams, 2u);
  EXPECT_EQ(steps, 40u);
  EXPECT_EQ(frames, 40u);  // 20 steps per stream, both under the 32-frame cap
}

TEST(EngineIntrospect, JsonCarriesCountersAndShardTallies) {
  StreamEngine engine({.threads = 2, .flight_recorder_depth = 8});
  ASSERT_TRUE(engine.submit(small_spec()).is_ok());
  for (int k = 0; k < 5; ++k) engine.step_all();
  const std::string json = serve::introspection_json(engine.introspect());
  EXPECT_NE(json.find("\"running\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"recorder_depth\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"shard_info\": ["), std::string::npos);
  EXPECT_NE(json.find("\"recorder_frames\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"dumps_written\""), std::string::npos);
}

// -------------------------------------------------------------- event wiring

class EngineEventTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    if (!obs::enabled()) GTEST_SKIP() << "observability compiled out";
    EventLog::global().clear();
  }
  void TearDown() override {
    EventLog::global().clear();
    obs::set_enabled(was_enabled_);
  }

  static std::size_t count_kind(const std::vector<obs::Event>& events, EventKind kind) {
    std::size_t n = 0;
    for (const obs::Event& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

 private:
  bool was_enabled_ = true;
};

TEST_F(EngineEventTest, AlarmAndDumpEventsCarryTheStreamId) {
  StreamEngine engine({.threads = 1, .flight_recorder_depth = 128});
  core::Result<StreamId> id = engine.submit(alarming_spec());
  ASSERT_TRUE(id.is_ok());
  engine.run_to_completion();

  const std::vector<obs::Event> events = EventLog::global().collect();
  EXPECT_GE(count_kind(events, EventKind::kAlarm), 1u);
  EXPECT_GE(count_kind(events, EventKind::kDump), 1u);
  for (const obs::Event& e : events) {
    if (e.kind == EventKind::kAlarm || e.kind == EventKind::kDump) {
      EXPECT_EQ(e.stream, id.value());
    }
  }
}

TEST_F(EngineEventTest, AdmissionRejectAndCheckpointAreLogged) {
  StreamEngine engine({.threads = 1, .max_streams = 1, .queue_capacity = 1});
  ASSERT_TRUE(engine.submit(small_spec("series_rlc", AttackKind::kNone, 1)).is_ok());
  ASSERT_TRUE(engine.submit(small_spec("series_rlc", AttackKind::kNone, 2)).is_ok());
  EXPECT_FALSE(engine.submit(small_spec("series_rlc", AttackKind::kNone, 3)).is_ok());
  engine.step_all();
  ASSERT_TRUE(engine.checkpoint().is_ok());

  const std::vector<obs::Event> events = EventLog::global().collect();
  EXPECT_EQ(count_kind(events, EventKind::kAdmissionReject), 1u);
  EXPECT_EQ(count_kind(events, EventKind::kCheckpoint), 1u);
}

}  // namespace
}  // namespace awd
