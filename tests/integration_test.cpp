// Cross-module integration tests: run the full pipeline over every plant x
// attack combination and check the structural invariants that individual
// unit tests cannot see together.
#include <gtest/gtest.h>

#include <tuple>

#include "core/detection_system.hpp"
#include "core/metrics.hpp"

namespace awd::core {
namespace {

using IntegrationParam = std::tuple<const char*, AttackKind>;

class PipelineInvariants : public ::testing::TestWithParam<IntegrationParam> {};

TEST_P(PipelineInvariants, HoldThroughoutARun) {
  const auto& [key, attack] = GetParam();
  const SimulatorCase scase = simulator_case(key);
  DetectionSystem system(scase, attack, 1234);
  const sim::Trace trace = system.run(250);

  for (std::size_t t = 0; t < trace.size(); ++t) {
    const auto& r = trace[t];
    // Time is contiguous.
    ASSERT_EQ(r.t, t);
    // The adaptive window tracks the deadline, clamped to [0, w_m].
    EXPECT_LE(r.window, scase.max_window);
    EXPECT_LE(r.window, r.deadline);
    // The deadline never exceeds the search cap.
    EXPECT_LE(r.deadline, scase.max_window);
    // Attack activity matches the configured window.
    const auto atk = scase.make_attack(attack);
    EXPECT_EQ(r.attack_active, atk->active(t));
    // Residuals are elementwise non-negative by construction.
    for (std::size_t d = 0; d < r.residual.size(); ++d) {
      EXPECT_GE(r.residual[d], 0.0);
    }
    // Applied control respects the actuator range.
    EXPECT_TRUE(scase.u_range.contains(r.control));
    // The commanded input may exceed the range; the applied one is its clamp.
    EXPECT_EQ(r.control, scase.u_range.clamp(r.commanded));
  }

  // The logger retains exactly the sliding window the protocol needs.
  EXPECT_EQ(system.logger().latest(), trace.size() - 1);
  EXPECT_GE(system.logger().size(), scase.max_window + 1);
}

std::string param_name(const ::testing::TestParamInfo<IntegrationParam>& info) {
  return std::string(std::get<0>(info.param)) + "_" +
         std::string(to_string(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    AllPlantsAllAttacks, PipelineInvariants,
    ::testing::Combine(::testing::Values("aircraft_pitch", "vehicle_turning",
                                         "series_rlc", "dc_motor", "quadrotor",
                                         "testbed_car"),
                       ::testing::Values(AttackKind::kNone, AttackKind::kBias,
                                         AttackKind::kDelay, AttackKind::kReplay,
                                         AttackKind::kFreeze)),
    param_name);

TEST(Integration, CleanRunsStayMostlySafeWithModerateFp) {
  // Without an attack there is nothing to detect.  Most plants stay inside
  // the safe set; the vehicle-turning case deliberately operates so close
  // to the boundary (weave peaks at 1.85 of a 2.0 bound, ±0.075/step
  // disturbance) that brief excursions are part of its physics — so the
  // invariant is "rare", not "never".
  for (const auto& scase : table1_cases()) {
    DetectionSystem system(scase, AttackKind::kNone, 77);
    const sim::Trace trace = system.run();
    std::size_t unsafe_steps = 0;
    for (const auto& r : trace) {
      if (r.unsafe) ++unsafe_steps;
    }
    EXPECT_LT(static_cast<double>(unsafe_steps) / static_cast<double>(trace.size()), 0.1)
        << scase.key;
    const double fp =
        false_positive_rate(trace, trace.size(), trace.size(), Strategy::kAdaptive, 100);
    EXPECT_LT(fp, 0.25) << scase.key;
  }
}

TEST(Integration, AttackedRunsGoUnsafeOnlyAfterOnsetWhenCleanRunIsSafe) {
  for (const auto& scase : table1_cases()) {
    // Same seed with and without the attack: if the clean realization never
    // leaves the safe set, any unsafe excursion in the attacked run is the
    // attack's doing and must come after the onset.
    DetectionSystem clean(scase, AttackKind::kNone, 31);
    if (clean.run().first_unsafe().has_value()) continue;  // noise-dominated plant
    DetectionSystem attacked(scase, AttackKind::kBias, 31);
    const auto unsafe = attacked.run().first_unsafe();
    if (unsafe) EXPECT_GE(*unsafe, scase.attack_start) << scase.key;
  }
}

TEST(Integration, AdaptiveEvaluationsBoundedByProtocol) {
  // Per step: 1 current test + at most (w_p - w_c) <= w_m complementary
  // sweeps, so the total is bounded by steps * (w_m + 1).
  const SimulatorCase scase = simulator_case("vehicle_turning");
  DetectionSystem system(scase, AttackKind::kBias, 5);
  const std::size_t steps = 200;
  (void)system.run(steps);
  EXPECT_GE(system.adaptive_evaluations(), steps);
  EXPECT_LE(system.adaptive_evaluations(), steps * (scase.max_window + 1));
}

}  // namespace
}  // namespace awd::core
