// Unit and property tests for the eigenvalue solver.
#include "linalg/eig.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/config.hpp"
#include "sim/noise.hpp"

namespace awd::linalg {
namespace {

std::vector<double> sorted_real(const std::vector<std::complex<double>>& evs) {
  std::vector<double> r;
  for (const auto& e : evs) r.push_back(e.real());
  std::sort(r.begin(), r.end());
  return r;
}

TEST(Eig, Scalar) {
  const auto evs = eigenvalues(Matrix{{-3.5}});
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_DOUBLE_EQ(evs[0].real(), -3.5);
}

TEST(Eig, DiagonalMatrix) {
  const auto evs = eigenvalues(Matrix::diagonal(Vec{3.0, -1.0, 0.5}));
  const auto r = sorted_real(evs);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], -1.0, 1e-10);
  EXPECT_NEAR(r[1], 0.5, 1e-10);
  EXPECT_NEAR(r[2], 3.0, 1e-10);
}

TEST(Eig, UpperTriangularEigsAreDiagonal) {
  const Matrix a{{2.0, 5.0, -1.0}, {0.0, -3.0, 4.0}, {0.0, 0.0, 7.0}};
  const auto r = sorted_real(eigenvalues(a));
  EXPECT_NEAR(r[0], -3.0, 1e-9);
  EXPECT_NEAR(r[1], 2.0, 1e-9);
  EXPECT_NEAR(r[2], 7.0, 1e-9);
}

TEST(Eig, ComplexPairFromRotation) {
  // Rotation by θ scaled by ρ: eigenvalues ρ e^{±iθ}.
  const double rho = 0.9, theta = 0.7;
  const Matrix a{{rho * std::cos(theta), -rho * std::sin(theta)},
                 {rho * std::sin(theta), rho * std::cos(theta)}};
  const auto evs = eigenvalues(a);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_NEAR(std::abs(evs[0]), rho, 1e-10);
  EXPECT_NEAR(std::abs(evs[1]), rho, 1e-10);
  EXPECT_NEAR(std::abs(evs[0].imag()), rho * std::sin(theta), 1e-10);
}

TEST(Eig, KnownNonSymmetric3x3) {
  // Companion matrix of (λ-1)(λ-2)(λ-3) = λ³ - 6λ² + 11λ - 6.
  const Matrix a{{6.0, -11.0, 6.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const auto r = sorted_real(eigenvalues(a));
  EXPECT_NEAR(r[0], 1.0, 1e-8);
  EXPECT_NEAR(r[1], 2.0, 1e-8);
  EXPECT_NEAR(r[2], 3.0, 1e-8);
}

TEST(Eig, HessenbergPreservesEigenvalues) {
  sim::Rng rng(31);
  Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  const Matrix h = hessenberg(a);
  // Hessenberg structure: zero below the first subdiagonal.
  for (std::size_t i = 2; i < 5; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_NEAR(h(i, j), 0.0, 1e-12);
  }
  // Similarity transform: traces agree (sum of eigenvalues).
  EXPECT_NEAR(h.trace(), a.trace(), 1e-10);
}

// Property: eigenvalue sum = trace and |product| = |det| on random matrices.
TEST(Eig, TraceAndDeterminantIdentities) {
  sim::Rng rng(37);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    }
    const auto evs = eigenvalues(a);
    ASSERT_EQ(evs.size(), n);
    std::complex<double> sum = 0.0, prod = 1.0;
    for (const auto& e : evs) {
      sum += e;
      prod *= e;
    }
    EXPECT_NEAR(sum.real(), a.trace(), 1e-7) << "trial " << trial;
    EXPECT_NEAR(sum.imag(), 0.0, 1e-7);  // complex eigenvalues pair up
  }
}

TEST(Eig, SpectralRadiusAndStability) {
  EXPECT_NEAR(spectral_radius(Matrix::diagonal(Vec{0.5, -0.99})), 0.99, 1e-10);
  EXPECT_TRUE(is_schur_stable(Matrix::diagonal(Vec{0.5, -0.99})));
  EXPECT_FALSE(is_schur_stable(Matrix::diagonal(Vec{0.5, -1.01})));
  EXPECT_FALSE(is_schur_stable(Matrix::diagonal(Vec{0.95}), /*margin=*/0.1));
}

TEST(Eig, OpenLoopPlantSpectra) {
  // Stable open-loop plants stay stable after ZOH discretization;
  // integrator-type plants sit on the unit circle.
  EXPECT_LE(spectral_radius(core::simulator_case("series_rlc").model.A), 1.0);
  EXPECT_NEAR(spectral_radius(core::simulator_case("vehicle_turning").model.A), 1.0,
              1e-9);  // pure integrator
  EXPECT_NEAR(spectral_radius(core::simulator_case("quadrotor").model.A), 1.0,
              1e-9);  // chains of integrators
  EXPECT_LT(spectral_radius(core::simulator_case("testbed_car").model.A), 1.0);
}

TEST(Eig, NonSquareThrows) {
  EXPECT_THROW((void)eigenvalues(Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW((void)hessenberg(Matrix(2, 3)), std::invalid_argument);
}

TEST(Eig, EmptyMatrix) { EXPECT_TRUE(eigenvalues(Matrix(0, 0)).empty()); }

}  // namespace
}  // namespace awd::linalg
