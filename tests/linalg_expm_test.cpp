// Unit tests for the matrix exponential.
#include "linalg/expm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "sim/noise.hpp"

namespace awd::linalg {
namespace {

TEST(Expm, ZeroMatrixGivesIdentity) {
  const Matrix e = expm(Matrix(3, 3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-15);
  }
}

TEST(Expm, DiagonalMatrix) {
  const Matrix e = expm(Matrix::diagonal(Vec{1.0, -2.0, 0.5}));
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-13);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixExactSeries) {
  // N = [[0,1],[0,0]] -> e^N = I + N exactly.
  const Matrix e = expm(Matrix{{0.0, 1.0}, {0.0, 0.0}});
  EXPECT_NEAR(e(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-15);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-15);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-15);
}

TEST(Expm, RotationMatrix) {
  // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]].
  const double t = 1.3;
  const Matrix e = expm(Matrix{{0.0, -t}, {t, 0.0}});
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-13);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-13);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-13);
}

TEST(Expm, LargeNormTriggersScaling) {
  // ||A|| far above theta_13 exercises the squaring phase.
  const double t = 30.0;
  const Matrix e = expm(Matrix{{0.0, -t}, {t, 0.0}});
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-10);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-10);
}

TEST(Expm, NonSquareThrows) {
  EXPECT_THROW((void)expm(Matrix(2, 3)), std::invalid_argument);
}

TEST(Expm, EmptyMatrix) {
  const Matrix e = expm(Matrix(0, 0));
  EXPECT_EQ(e.rows(), 0u);
}

// Property: e^A e^{-A} = I for random matrices.
TEST(Expm, InverseIdentityProperty) {
  sim::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
    }
    const Matrix prod = expm(a) * expm(-a);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9) << "trial " << trial;
      }
    }
  }
}

// Property: e^{A(s+t)} = e^{As} e^{At} (semigroup).
TEST(Expm, SemigroupProperty) {
  const Matrix a{{-0.3, 1.2, 0.0}, {0.0, -0.7, 0.5}, {0.2, 0.0, -1.1}};
  const Matrix lhs = expm(a * 0.7);
  const Matrix rhs = expm(a * 0.3) * expm(a * 0.4);
  EXPECT_LT((lhs - rhs).max_abs(), 1e-12);
}

// Property: det(e^A) = e^{trace A}.
TEST(Expm, DeterminantIsExpTrace) {
  const Matrix a{{0.2, 1.0}, {-0.5, -0.9}};
  EXPECT_NEAR(Lu(expm(a)).determinant(), std::exp(a.trace()), 1e-12);
}

}  // namespace
}  // namespace awd::linalg
