// Unit tests for the SIMD hot-path kernels (src/linalg/kernels.*).
//
// The contract under test is bit-identity: every vector kernel set must
// reproduce the scalar reference set bit for bit — including NaN/Inf
// propagation, signed zeros, and dimension remainders that do not fill a
// vector lane.  Each case therefore runs the kernel once under the forced
// scalar set and once under the best runtime set, and compares outputs with
// exact bit equality (ULP bound 0).  On a host without a vector set the two
// runs collapse onto the same code path and the tests degenerate to
// self-consistency, which is the intended behavior.
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vec.hpp"

namespace awd::linalg::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

/// RAII pin of the dispatch level (restores the previous level on exit so a
/// failing test cannot leak a forced-scalar process state).
class LevelGuard {
 public:
  explicit LevelGuard(SimdLevel level) : previous_(active_level()) {
    (void)force_level(level);
  }
  ~LevelGuard() { (void)force_level(previous_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  SimdLevel previous_;
};

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<double> random_values(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

Matrix random_matrix(std::mt19937_64& rng, std::size_t rows, std::size_t cols) {
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  }
  return m;
}

TEST(KernelLevels, ScalarAlwaysAvailableAndForceRoundTrips) {
  const SimdLevel runtime = runtime_level();
  {
    const LevelGuard pin(SimdLevel::kScalar);
    EXPECT_EQ(active_level(), SimdLevel::kScalar);
  }
  // The guard restored whatever the process started with; runtime_level is
  // always reachable.
  EXPECT_EQ(force_level(runtime), runtime);
  EXPECT_EQ(active_level(), runtime);
}

TEST(KernelLevels, CompiledClampsRuntimeAndNamesAreStable) {
  EXPECT_LE(static_cast<int>(runtime_level()), static_cast<int>(compiled_level()));
  EXPECT_STREQ(level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(level_name(SimdLevel::kNeon), "neon");
  EXPECT_STREQ(level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_EQ(lane_width(SimdLevel::kScalar), 1u);
  EXPECT_EQ(lane_width(SimdLevel::kNeon), 2u);
  EXPECT_EQ(lane_width(SimdLevel::kAvx2), 4u);
}

// Gemv over every dimension from 1 to 13 covers full lanes, remainder
// groups of every phase, and the 1-dim degenerate panel; bit-compared both
// against the scalar kernel and against Matrix::mul_into (the semantics the
// panel is documented to replicate).
TEST(KernelGemv, BitIdenticalToScalarAndMulIntoAcrossDims) {
  std::mt19937_64 rng(20260808);
  for (std::size_t n = 1; n <= 13; ++n) {
    for (std::size_t m = 1; m <= 5; ++m) {
      const Matrix a = random_matrix(rng, n, m);
      const std::vector<double> x = random_values(rng, m);
      GemvPanel panel;
      panel.assign(a);
      ASSERT_EQ(panel.rows, n);
      ASSERT_EQ(panel.cols, m);
      ASSERT_EQ(panel.padded % GemvPanel::kPanelPad, 0u);

      std::vector<double> y_simd(n, 7.0);
      std::vector<double> y_scalar(n, -7.0);
      gemv(panel, x.data(), y_simd.data());
      {
        const LevelGuard pin(SimdLevel::kScalar);
        gemv(panel, x.data(), y_scalar.data());
      }
      EXPECT_TRUE(bits_equal(y_simd, y_scalar)) << "n=" << n << " m=" << m;

      Vec ref;
      a.mul_into(Vec(std::vector<double>(x)), ref);
      EXPECT_TRUE(bits_equal(y_simd, ref.raw())) << "n=" << n << " m=" << m;
    }
  }
}

TEST(KernelGemv, EmptyMatrixAndZeroInputDim) {
  GemvPanel panel;
  panel.assign(Matrix(0, 0));
  EXPECT_TRUE(panel.empty());
  gemv(panel, nullptr, nullptr);  // zero loop trips: must not touch memory

  // Zero-column panel: every output row is the empty sum.
  panel.assign(Matrix(3, 0));
  std::vector<double> y(3, 99.0);
  gemv(panel, nullptr, y.data());
  for (double v : y) EXPECT_EQ(v, 0.0);
}

TEST(KernelGemv, NonFiniteRowsPropagateIdentically) {
  Matrix a(5, 3);
  a(0, 0) = kNan;
  a(1, 1) = kInf;
  a(2, 2) = -kInf;
  a(3, 0) = 1.0;
  a(4, 2) = std::numeric_limits<double>::denorm_min();
  const std::vector<double> x{1.0, -2.0, 0.5};
  GemvPanel panel;
  panel.assign(a);

  std::vector<double> y_simd(5), y_scalar(5);
  gemv(panel, x.data(), y_simd.data());
  {
    const LevelGuard pin(SimdLevel::kScalar);
    gemv(panel, x.data(), y_scalar.data());
  }
  EXPECT_TRUE(std::isnan(y_simd[0]));
  EXPECT_EQ(y_simd[1], -kInf);  // Inf * x[1] with x[1] = -2.0
  EXPECT_EQ(y_simd[2], -kInf);  // -Inf * x[2] with x[2] = 0.5
  EXPECT_TRUE(bits_equal(y_simd, y_scalar));
}

TEST(KernelElementwise, AbsDiffMatchesScalarIncludingNonFinite) {
  std::mt19937_64 rng(7);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{4}, std::size_t{5},
                              std::size_t{7}, std::size_t{8}, std::size_t{12},
                              std::size_t{13}}) {
    std::vector<double> a = random_values(rng, n);
    std::vector<double> b = random_values(rng, n);
    if (n >= 3) {
      a[0] = kNan;           // NaN - x = NaN, |NaN| = NaN
      b[1] = kInf;           // x - Inf = -Inf, |..| = Inf
      a[2] = b[2];           // exact zero difference
    }
    std::vector<double> out_simd(n, -1.0), out_scalar(n, -1.0);
    abs_diff(a.data(), b.data(), out_simd.data(), n);
    {
      const LevelGuard pin(SimdLevel::kScalar);
      abs_diff(a.data(), b.data(), out_scalar.data(), n);
    }
    EXPECT_TRUE(bits_equal(out_simd, out_scalar)) << "n=" << n;
  }
}

TEST(KernelElementwise, AbsDiffSupportsAliasedOutput) {
  std::mt19937_64 rng(11);
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{6},
                              std::size_t{9}}) {
    const std::vector<double> a = random_values(rng, n);
    const std::vector<double> b = random_values(rng, n);
    std::vector<double> expect(n);
    abs_diff(a.data(), b.data(), expect.data(), n);

    std::vector<double> alias_a = a;  // out aliases the first operand
    abs_diff(alias_a.data(), b.data(), alias_a.data(), n);
    EXPECT_TRUE(bits_equal(alias_a, expect)) << "n=" << n;

    std::vector<double> alias_b = b;  // out aliases the second operand
    abs_diff(a.data(), alias_b.data(), alias_b.data(), n);
    EXPECT_TRUE(bits_equal(alias_b, expect)) << "n=" << n;
  }
}

TEST(KernelElementwise, AddSubAssignMatchScalarAndSelfAlias) {
  std::mt19937_64 rng(13);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{5}, std::size_t{11}}) {
    const std::vector<double> base = random_values(rng, n);
    const std::vector<double> delta = random_values(rng, n);

    std::vector<double> add_simd = base;
    std::vector<double> add_scalar = base;
    add_assign(add_simd.data(), delta.data(), n);
    {
      const LevelGuard pin(SimdLevel::kScalar);
      add_assign(add_scalar.data(), delta.data(), n);
    }
    EXPECT_TRUE(bits_equal(add_simd, add_scalar)) << "n=" << n;

    std::vector<double> sub_simd = base;
    std::vector<double> sub_scalar = base;
    sub_assign(sub_simd.data(), delta.data(), n);
    {
      const LevelGuard pin(SimdLevel::kScalar);
      sub_assign(sub_scalar.data(), delta.data(), n);
    }
    EXPECT_TRUE(bits_equal(sub_simd, sub_scalar)) << "n=" << n;

    // v += v doubles each element; v -= v zeroes each element (with the
    // scalar's signed-zero behavior: x - x = +0.0 for finite x).
    std::vector<double> self = base;
    add_assign(self.data(), self.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(self[i], base[i] + base[i]);
    self = base;
    sub_assign(self.data(), self.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(self[i], 0.0);
  }
}

TEST(KernelThreshold, AnyAbsExceedsMatchesScalarSemantics) {
  // Strictly-greater, NaN never exceeds (ordered compare), Inf always does.
  const std::vector<double> tau{1.0, 2.0, 3.0, 4.0, 5.0};
  for (const SimdLevel level : {runtime_level(), SimdLevel::kScalar}) {
    const LevelGuard pin(level);
    EXPECT_FALSE(any_abs_exceeds(std::vector<double>{1.0, -2.0, 3.0, -4.0, 5.0}.data(),
                                 tau.data(), 5));  // equality is not exceedance
    EXPECT_TRUE(any_abs_exceeds(std::vector<double>{0.0, 0.0, 0.0, 0.0, -5.5}.data(),
                                tau.data(), 5));  // remainder lane fires
    EXPECT_TRUE(any_abs_exceeds(std::vector<double>{0.0, 2.5, 0.0, 0.0, 0.0}.data(),
                                tau.data(), 5));  // full-lane group fires
    EXPECT_FALSE(any_abs_exceeds(std::vector<double>{kNan, kNan, kNan, kNan, kNan}.data(),
                                 tau.data(), 5));  // NaN is silent
    EXPECT_TRUE(any_abs_exceeds(std::vector<double>{0.0, -kInf, 0.0, 0.0, 0.0}.data(),
                                tau.data(), 5));
    EXPECT_FALSE(any_abs_exceeds(nullptr, nullptr, 0));
  }
}

// Reference reimplementation of the support walk straight from the header's
// containment formula, evaluated on the padded table layout.
std::size_t reference_walk(const SupportTable& table, const double* x0,
                           std::size_t cap, bool& resolved) {
  for (std::size_t t = 1; t <= cap; ++t) {
    const SupportTable::Step& st = table.steps[t - 1];
    for (std::size_t k = 0; k < st.count; ++k) {
      double center = 0.0;
      for (std::size_t j = 0; j < table.dim; ++j) {
        center += table.rows[st.row_off + j * st.padded + k] * x0[j];
      }
      center += table.drift[st.scalar_off + k];
      const double spread = table.spread[st.scalar_off + k];
      if (!(table.lo[st.scalar_off + k] <= center - spread &&
            center + spread <= table.hi[st.scalar_off + k])) {
        resolved = true;
        return t;
      }
    }
  }
  resolved = false;
  return cap;
}

SupportTable random_table(std::mt19937_64& rng, std::size_t dim,
                          std::size_t steps, std::size_t checks_per_step) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  SupportTable table;
  table.dim = dim;
  std::vector<double> rows, drifts, spreads, los, his;
  for (std::size_t t = 0; t < steps; ++t) {
    rows.clear();
    drifts.clear();
    spreads.clear();
    los.clear();
    his.clear();
    for (std::size_t k = 0; k < checks_per_step; ++k) {
      for (std::size_t j = 0; j < dim; ++j) rows.push_back(dist(rng));
      drifts.push_back(dist(rng));
      spreads.push_back(std::abs(dist(rng)) * 0.1);
      // Bounds wide enough that early steps usually pass, tight enough that
      // some table resolves mid-walk.
      los.push_back(-4.0 - static_cast<double>(t));
      his.push_back(4.0 + static_cast<double>(t));
    }
    table.push_step(rows.data(), drifts.data(), spreads.data(), los.data(),
                    his.data(), checks_per_step);
  }
  return table;
}

TEST(KernelSupportWalk, MatchesReferenceAcrossShapesAndLevels) {
  std::mt19937_64 rng(20260808);
  for (const std::size_t dim : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{4}, std::size_t{12}}) {
    for (const std::size_t checks : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}, std::size_t{4},
                                     std::size_t{5}, std::size_t{7}}) {
      const SupportTable table = random_table(rng, dim, 20, checks);
      const std::vector<double> x0 = random_values(rng, dim);

      bool ref_resolved = false;
      const std::size_t ref_t = reference_walk(table, x0.data(), 20, ref_resolved);
      for (const SimdLevel level : {runtime_level(), SimdLevel::kScalar}) {
        const LevelGuard pin(level);
        bool resolved = false;
        const std::size_t t = support_walk(table, x0.data(), 20, resolved);
        EXPECT_EQ(t, ref_t) << "dim=" << dim << " checks=" << checks
                            << " level=" << level_name(level);
        EXPECT_EQ(resolved, ref_resolved);
      }
    }
  }
}

TEST(KernelSupportWalk, CapShortOfBoundaryLeavesUnresolved) {
  std::mt19937_64 rng(3);
  const SupportTable table = random_table(rng, 3, 30, 2);
  const std::vector<double> x0{100.0, -100.0, 50.0};  // escapes early
  bool resolved = false;
  const std::size_t full = support_walk(table, x0.data(), 30, resolved);
  ASSERT_TRUE(resolved);
  ASSERT_GE(full, 1u);

  // Capping below the failing step must report resolved=false and the cap.
  bool capped_resolved = true;
  const std::size_t capped = support_walk(table, x0.data(), full - 1, capped_resolved);
  EXPECT_FALSE(capped_resolved);
  EXPECT_EQ(capped, full - 1);
}

TEST(KernelSupportWalk, NanSeedFailsLikeScalarAtEveryLevel) {
  std::mt19937_64 rng(5);
  const SupportTable table = random_table(rng, 2, 10, 3);
  const std::vector<double> x0{kNan, 1.0};

  bool scalar_resolved = false;
  std::size_t scalar_t = 0;
  {
    const LevelGuard pin(SimdLevel::kScalar);
    scalar_t = support_walk(table, x0.data(), 10, scalar_resolved);
  }
  // A NaN center is outside every finite box: the very first check fails.
  EXPECT_TRUE(scalar_resolved);
  EXPECT_EQ(scalar_t, 1u);

  bool simd_resolved = false;
  const std::size_t simd_t = support_walk(table, x0.data(), 10, simd_resolved);
  EXPECT_EQ(simd_t, scalar_t);
  EXPECT_EQ(simd_resolved, scalar_resolved);
}

TEST(KernelSupportWalk, PaddedLanesNeverResolveTheWalk) {
  // One check per step forces 3 padded lanes per group on the widest set;
  // bounds the live check always satisfies.  If a padded lane (drift 0,
  // spread 0, lo -inf, hi +inf) could fail, this would resolve spuriously.
  SupportTable table;
  table.dim = 1;
  const double row = 0.0;  // center stays 0 regardless of x0
  const double drift = 0.0;
  const double spread = 0.5;
  const double lo = -1.0;
  const double hi = 1.0;
  for (int t = 0; t < 8; ++t) {
    table.push_step(&row, &drift, &spread, &lo, &hi, 1);
  }
  const double x0 = 1e300;
  for (const SimdLevel level : {runtime_level(), SimdLevel::kScalar}) {
    const LevelGuard pin(level);
    bool resolved = true;
    EXPECT_EQ(support_walk(table, &x0, 8, resolved), 8u);
    EXPECT_FALSE(resolved);
  }
}

TEST(KernelSupportWalk, EmptyStepAndZeroCap) {
  SupportTable table;
  table.dim = 2;
  // A step with zero live checks (fully unconstrained safe set) can never
  // fail.
  table.push_step(nullptr, nullptr, nullptr, nullptr, nullptr, 0);
  const std::vector<double> x0{1.0, 2.0};
  for (const SimdLevel level : {runtime_level(), SimdLevel::kScalar}) {
    const LevelGuard pin(level);
    bool resolved = true;
    EXPECT_EQ(support_walk(table, x0.data(), 1, resolved), 1u);
    EXPECT_FALSE(resolved);
    resolved = true;
    EXPECT_EQ(support_walk(table, x0.data(), 0, resolved), 0u);
    EXPECT_FALSE(resolved);
  }
}

TEST(KernelVecIntegration, VecOperatorsRouteThroughKernels) {
  // Vec::operator+=/-=/any_exceeds are kernel-backed; sanity-check the
  // wiring end to end on a remainder-heavy dimension.
  Vec a{1.0, -2.0, 3.0, -4.0, 5.5};
  const Vec b{0.5, 0.5, 0.5, 0.5, 0.5};
  a += b;
  EXPECT_EQ(a, (Vec{1.5, -1.5, 3.5, -3.5, 6.0}));
  a -= b;
  EXPECT_EQ(a, (Vec{1.0, -2.0, 3.0, -4.0, 5.5}));
  EXPECT_TRUE(a.any_exceeds(Vec{5.0, 5.0, 5.0, 5.0, 5.0}));
  EXPECT_FALSE(a.any_exceeds(Vec{6.0, 6.0, 6.0, 6.0, 6.0}));
}

}  // namespace
}  // namespace awd::linalg::kernels
