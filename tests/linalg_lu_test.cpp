// Unit tests for the LU decomposition.
#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/noise.hpp"

namespace awd::linalg {
namespace {

TEST(Lu, SolvesIdentity) {
  const Lu lu(Matrix::identity(3));
  const Vec b{1.0, 2.0, 3.0};
  const Vec x = lu.solve(b);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vec b{3.0, 5.0};
  const Vec x = Lu(a).solve(b);
  // 2x + y = 3, x + 3y = 5 -> x = 4/5, y = 7/5
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Leading zero pivot; naive elimination would fail.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vec x = Lu(a).solve(Vec{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Lu lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_EQ(lu.determinant(), 0.0);
  EXPECT_THROW((void)lu.solve(Vec{1.0, 1.0}), std::domain_error);
  EXPECT_THROW((void)lu.inverse(), std::domain_error);
}

TEST(Lu, Determinant) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_NEAR(Lu(a).determinant(), 12.0, 1e-12);
  // Row swap flips sign relative to the diagonal product.
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(Lu(b).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const Matrix a{{4.0, 7.0, 2.0}, {3.0, 5.0, 1.0}, {8.0, 1.0, 6.0}};
  const Matrix prod = a * Lu(a).inverse();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW((void)Lu(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DimensionMismatchThrows) {
  const Lu lu(Matrix::identity(2));
  EXPECT_THROW((void)lu.solve(Vec{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Lu, ConvenienceFunctions) {
  const Matrix a{{2.0, 0.0}, {0.0, 5.0}};
  const Vec x = solve(a, Vec{4.0, 10.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  const Matrix ainv = inverse(a);
  EXPECT_NEAR(ainv(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(ainv(1, 1), 0.2, 1e-12);
}

// Property: random well-conditioned systems solve to residual ~ machine eps.
TEST(Lu, RandomSystemsSolveAccurately) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
      a(i, i) += 4.0;  // diagonal dominance keeps the system well-conditioned
    }
    Vec x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-5.0, 5.0);
    const Vec b = a * x_true;
    const Vec x = Lu(a).solve(b);
    EXPECT_LT((x - x_true).norm_inf(), 1e-10) << "trial " << trial << " n=" << n;
  }
}

}  // namespace
}  // namespace awd::linalg
