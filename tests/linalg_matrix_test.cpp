// Unit tests for linalg::Matrix.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::linalg {
namespace {

TEST(Matrix, ZeroConstruction) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0.0);
  EXPECT_FALSE(m.is_square());
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_TRUE(m.is_square());
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
  EXPECT_EQ(i(2, 2), 1.0);
}

TEST(Matrix, Diagonal) {
  const Matrix d = Matrix::diagonal(Vec{2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(Matrix, MatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vec v{1.0, 1.0};
  const Vec r = a * v;
  EXPECT_EQ(r[0], 3.0);
  EXPECT_EQ(r[1], 7.0);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, TransposeTimesMatchesTransposedProduct) {
  const Matrix a{{1.0, -2.0}, {3.0, 0.5}};
  const Vec v{2.0, -1.0};
  const Vec direct = a.transposed() * v;
  const Vec fused = a.transpose_times(v);
  EXPECT_DOUBLE_EQ(direct[0], fused[0]);
  EXPECT_DOUBLE_EQ(direct[1], fused[1]);
}

TEST(Matrix, IntegerPower) {
  const Matrix a{{1.0, 1.0}, {0.0, 1.0}};
  const Matrix a3 = a.pow(3);
  EXPECT_EQ(a3(0, 1), 3.0);
  const Matrix a0 = a.pow(0);
  EXPECT_EQ(a0(0, 0), 1.0);
  EXPECT_EQ(a0(0, 1), 0.0);
}

TEST(Matrix, PowNonSquareThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW((void)a.pow(2), std::invalid_argument);
}

TEST(Matrix, RowAndColExtraction) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.row_vec(1)[0], 3.0);
  EXPECT_EQ(a.col_vec(1)[0], 2.0);
  EXPECT_THROW((void)a.row_vec(2), std::out_of_range);
}

TEST(Matrix, Norms) {
  const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm1(), 6.0);  // max column abs sum: |−2|+|4| = 6
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.norm_frobenius() * a.norm_frobenius(), 30.0);
}

TEST(Matrix, Trace) {
  const Matrix a{{1.0, 9.0}, {9.0, 2.0}};
  EXPECT_DOUBLE_EQ(a.trace(), 3.0);
  EXPECT_THROW((void)Matrix(2, 3).trace(), std::invalid_argument);
}

TEST(Matrix, ScalarArithmetic) {
  Matrix a{{2.0, 4.0}};
  a *= 0.5;
  EXPECT_EQ(a(0, 1), 2.0);
  EXPECT_THROW(a /= 0.0, std::invalid_argument);
  const Matrix b = -a;
  EXPECT_EQ(b(0, 0), -1.0);
}

TEST(Matrix, AdditionShapeChecked) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Matrix, RowAndColFactories) {
  const Matrix r = Matrix::row(Vec{1.0, 2.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 2u);
  const Matrix c = Matrix::col(Vec{1.0, 2.0});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
}

}  // namespace
}  // namespace awd::linalg
