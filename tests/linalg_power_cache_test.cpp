// Unit tests for PowerCache.
#include "linalg/power_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::linalg {
namespace {

TEST(PowerCache, PowerZeroIsIdentity) {
  PowerCache cache(Matrix{{2.0, 0.0}, {0.0, 3.0}});
  const Matrix& p0 = cache.power(0);
  EXPECT_EQ(p0(0, 0), 1.0);
  EXPECT_EQ(p0(0, 1), 0.0);
}

TEST(PowerCache, MatchesDirectPow) {
  const Matrix a{{1.0, 0.5}, {-0.2, 0.9}};
  PowerCache cache(a);
  for (unsigned k = 0; k <= 10; ++k) {
    EXPECT_LT((cache.power(k) - a.pow(k)).max_abs(), 1e-12) << "k=" << k;
  }
}

TEST(PowerCache, GrowsIncrementally) {
  PowerCache cache(Matrix::identity(2));
  EXPECT_EQ(cache.cached_count(), 1u);
  (void)cache.power(5);
  EXPECT_EQ(cache.cached_count(), 6u);
  (void)cache.power(3);  // no growth for already-cached powers
  EXPECT_EQ(cache.cached_count(), 6u);
}

TEST(PowerCache, ReservePrecomputes) {
  PowerCache cache(Matrix{{0.5}});
  cache.reserve(8);
  EXPECT_EQ(cache.cached_count(), 9u);
  EXPECT_NEAR(cache.power(8)(0, 0), 0.00390625, 1e-15);
}

TEST(PowerCache, NonSquareThrows) {
  EXPECT_THROW(PowerCache(Matrix(2, 3)), std::invalid_argument);
}

TEST(PowerCache, BaseAccessor) {
  const Matrix a{{7.0}};
  PowerCache cache(a);
  EXPECT_EQ(cache.base()(0, 0), 7.0);
}

}  // namespace
}  // namespace awd::linalg
