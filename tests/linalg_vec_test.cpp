// Unit tests for linalg::Vec.
#include "linalg/vec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::linalg {
namespace {

TEST(Vec, DefaultConstructedIsEmpty) {
  const Vec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vec, SizeConstructorZeroFills) {
  const Vec v(4);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vec, FillConstructor) {
  const Vec v(3, 2.5);
  EXPECT_EQ(v[0], 2.5);
  EXPECT_EQ(v[2], 2.5);
}

TEST(Vec, InitializerList) {
  const Vec v{1.0, -2.0, 3.0};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.0);
}

TEST(Vec, AdditionAndSubtraction) {
  const Vec a{1.0, 2.0};
  const Vec b{3.0, 5.0};
  const Vec sum = a + b;
  const Vec diff = b - a;
  EXPECT_EQ(sum[0], 4.0);
  EXPECT_EQ(sum[1], 7.0);
  EXPECT_EQ(diff[0], 2.0);
  EXPECT_EQ(diff[1], 3.0);
}

TEST(Vec, MismatchedAdditionThrows) {
  Vec a{1.0, 2.0};
  const Vec b{1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW((void)a.dot(b), std::invalid_argument);
}

TEST(Vec, ScalarOperations) {
  Vec v{2.0, -4.0};
  v *= 0.5;
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.0);
  const Vec w = 3.0 * v;
  EXPECT_EQ(w[1], -6.0);
  EXPECT_THROW(v /= 0.0, std::invalid_argument);
}

TEST(Vec, DotProduct) {
  const Vec a{1.0, 2.0, 3.0};
  const Vec b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 4.0 - 10.0 + 18.0);
}

TEST(Vec, Norms) {
  const Vec v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm1(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
}

TEST(Vec, CwiseAbs) {
  const Vec v{-1.5, 2.0, 0.0};
  const Vec a = v.cwise_abs();
  EXPECT_EQ(a[0], 1.5);
  EXPECT_EQ(a[1], 2.0);
  EXPECT_EQ(a[2], 0.0);
}

TEST(Vec, CwiseMulAndMax) {
  const Vec a{2.0, -3.0};
  const Vec b{4.0, 5.0};
  EXPECT_EQ(a.cwise_mul(b)[0], 8.0);
  EXPECT_EQ(a.cwise_mul(b)[1], -15.0);
  EXPECT_EQ(a.cwise_max(b)[0], 4.0);
  EXPECT_EQ(a.cwise_max(b)[1], 5.0);
}

TEST(Vec, AnyExceedsIsPerDimension) {
  const Vec z{0.01, 0.5};
  const Vec tau{0.02, 0.6};
  EXPECT_FALSE(z.any_exceeds(tau));
  const Vec z2{0.03, 0.5};
  EXPECT_TRUE(z2.any_exceeds(tau));
}

TEST(Vec, AnyExceedsUsesAbsoluteValue) {
  const Vec z{-0.5};
  const Vec tau{0.3};
  EXPECT_TRUE(z.any_exceeds(tau));
}

TEST(Vec, BasisVector) {
  const Vec e = Vec::basis(3, 1);
  EXPECT_EQ(e[0], 0.0);
  EXPECT_EQ(e[1], 1.0);
  EXPECT_EQ(e[2], 0.0);
  EXPECT_THROW((void)Vec::basis(3, 3), std::invalid_argument);
}

TEST(Vec, EqualityAndNegation) {
  const Vec a{1.0, 2.0};
  EXPECT_TRUE(a == (Vec{1.0, 2.0}));
  const Vec n = -a;
  EXPECT_EQ(n[0], -1.0);
  EXPECT_EQ(n[1], -2.0);
}

TEST(Vec, AtBoundsChecked) {
  Vec v{1.0};
  EXPECT_THROW((void)v.at(1), std::out_of_range);
  EXPECT_EQ(v.at(0), 1.0);
}

}  // namespace
}  // namespace awd::linalg
