// Unit tests for the LTI model types, discretization, and the model bank.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/expm.hpp"
#include "models/discretize.hpp"
#include "models/model_bank.hpp"

namespace awd::models {
namespace {

TEST(Lti, ContinuousValidation) {
  ContinuousLti sys;
  sys.A = Matrix(2, 3);
  sys.B = Matrix(2, 1);
  sys.name = "bad";
  EXPECT_THROW(sys.validate(), std::invalid_argument);

  sys.A = Matrix::identity(2);
  sys.B = Matrix(3, 1);  // wrong rows
  EXPECT_THROW(sys.validate(), std::invalid_argument);

  sys.B = Matrix(2, 0);  // no inputs
  EXPECT_THROW(sys.validate(), std::invalid_argument);

  sys.B = Matrix(2, 1);
  sys.state_names = {"only_one"};
  EXPECT_THROW(sys.validate(), std::invalid_argument);

  sys.state_names = {"a", "b"};
  EXPECT_NO_THROW(sys.validate());
}

TEST(Lti, DiscreteValidationChecksDt) {
  DiscreteLti sys;
  sys.A = Matrix::identity(1);
  sys.B = Matrix(1, 1);
  sys.dt = 0.0;
  EXPECT_THROW(sys.validate(), std::invalid_argument);
  sys.dt = 0.02;
  EXPECT_NO_THROW(sys.validate());
}

TEST(Lti, StepComputesAxPlusBu) {
  DiscreteLti sys;
  sys.A = Matrix{{0.5, 0.0}, {0.0, 2.0}};
  sys.B = Matrix{{1.0}, {0.0}};
  sys.dt = 0.1;
  const Vec next = sys.step(Vec{2.0, 3.0}, Vec{4.0});
  EXPECT_DOUBLE_EQ(next[0], 5.0);
  EXPECT_DOUBLE_EQ(next[1], 6.0);
}

TEST(Discretize, ZohScalarMatchesClosedForm) {
  // dx/dt = a x + b u: A_d = e^{a dt}, B_d = (e^{a dt} - 1) b / a.
  ContinuousLti sys;
  sys.A = Matrix{{-2.0}};
  sys.B = Matrix{{3.0}};
  sys.name = "scalar";
  const double dt = 0.1;
  const DiscreteLti d = discretize_zoh(sys, dt);
  EXPECT_NEAR(d.A(0, 0), std::exp(-0.2), 1e-13);
  EXPECT_NEAR(d.B(0, 0), (std::exp(-0.2) - 1.0) * 3.0 / -2.0, 1e-13);
}

TEST(Discretize, ZohDoubleIntegrator) {
  // x'' = u: A_d = [[1, dt],[0, 1]], B_d = [dt^2/2, dt].
  ContinuousLti sys;
  sys.A = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  sys.B = Matrix{{0.0}, {1.0}};
  sys.name = "double_integrator";
  const DiscreteLti d = discretize_zoh(sys, 0.1);
  EXPECT_NEAR(d.A(0, 1), 0.1, 1e-14);
  EXPECT_NEAR(d.B(0, 0), 0.005, 1e-14);
  EXPECT_NEAR(d.B(1, 0), 0.1, 1e-14);
}

TEST(Discretize, EulerFirstOrderAgreement) {
  // For small dt, Euler and ZOH agree to O(dt^2).
  const ContinuousLti sys = aircraft_pitch();
  const double dt = 1e-4;
  const DiscreteLti zoh = discretize_zoh(sys, dt);
  const DiscreteLti euler = discretize_euler(sys, dt);
  EXPECT_LT((zoh.A - euler.A).max_abs(), 1e-6);
  EXPECT_LT((zoh.B - euler.B).max_abs(), 1e-8);
}

TEST(Discretize, InvalidDtThrows) {
  EXPECT_THROW((void)discretize_zoh(aircraft_pitch(), 0.0), std::invalid_argument);
  EXPECT_THROW((void)discretize_euler(aircraft_pitch(), -1.0), std::invalid_argument);
}

TEST(Discretize, PreservesMetadata) {
  const DiscreteLti d = discretize_zoh(series_rlc(), 0.02);
  EXPECT_EQ(d.name, "series_rlc");
  EXPECT_EQ(d.dt, 0.02);
  ASSERT_EQ(d.state_names.size(), 2u);
  EXPECT_EQ(d.state_names[0], "capacitor_voltage");
}

struct BankCase {
  const char* name;
  ContinuousLti (*factory)();
  std::size_t n;
  std::size_t m;
};

class ModelBankTest : public ::testing::TestWithParam<BankCase> {};

TEST_P(ModelBankTest, ShapesAndValidation) {
  const BankCase& bc = GetParam();
  const ContinuousLti sys = bc.factory();
  EXPECT_NO_THROW(sys.validate());
  EXPECT_EQ(sys.state_dim(), bc.n);
  EXPECT_EQ(sys.input_dim(), bc.m);
  EXPECT_EQ(sys.state_names.size(), bc.n);
}

TEST_P(ModelBankTest, ZohDiscretizationIsStableToCompute) {
  const BankCase& bc = GetParam();
  const DiscreteLti d = discretize_zoh(bc.factory(), 0.02);
  EXPECT_NO_THROW(d.validate());
  // Every plant here is physical: the one-step map must be finite.
  EXPECT_TRUE(std::isfinite(d.A.max_abs()));
  EXPECT_TRUE(std::isfinite(d.B.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(
    Bank, ModelBankTest,
    ::testing::Values(BankCase{"aircraft_pitch", aircraft_pitch, 3, 1},
                      BankCase{"vehicle_turning", vehicle_turning, 1, 1},
                      BankCase{"series_rlc", series_rlc, 2, 1},
                      BankCase{"dc_motor_position", dc_motor_position, 3, 1},
                      BankCase{"quadrotor", quadrotor, 12, 4}),
    [](const ::testing::TestParamInfo<BankCase>& info) { return info.param.name; });

TEST(ModelBank, TestbedCarMatchesPaperParameters) {
  const DiscreteLti car = testbed_car();
  EXPECT_NO_THROW(car.validate());
  EXPECT_DOUBLE_EQ(car.A(0, 0), 0.8435);
  EXPECT_DOUBLE_EQ(car.B(0, 0), 7.7919e-4);
  EXPECT_DOUBLE_EQ(car.dt, 0.05);  // 20 Hz
  EXPECT_DOUBLE_EQ(kTestbedCarC, 384.3402);
}

TEST(ModelBank, QuadrotorHoverStructure) {
  const ContinuousLti q = quadrotor();
  // Position kinematics.
  EXPECT_EQ(q.A(0, 6), 1.0);
  EXPECT_EQ(q.A(2, 8), 1.0);
  // Gravity tilt coupling: u̇ = -g θ, v̇ = +g φ.
  EXPECT_NEAR(q.A(6, 4), -9.81, 1e-12);
  EXPECT_NEAR(q.A(7, 3), 9.81, 1e-12);
  // Thrust acts only on ẇ.
  EXPECT_GT(q.B(8, 0), 0.0);
  EXPECT_EQ(q.B(8, 1), 0.0);
}

TEST(ModelBank, RlcEnergyDynamicsSigns) {
  const ContinuousLti rlc = series_rlc();
  EXPECT_GT(rlc.A(0, 1), 0.0);   // capacitor charges with positive current
  EXPECT_LT(rlc.A(1, 0), 0.0);   // capacitor voltage opposes current growth
  EXPECT_LT(rlc.A(1, 1), 0.0);   // resistance damps
}

}  // namespace
}  // namespace awd::models
