// Tests for the observability core: sharded counters/histograms under
// concurrency, the enabled/disabled switch, exporter output, and the
// Chrome trace round trip.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/detection_system.hpp"
#include "obs/event_log.hpp"
#include "obs/report.hpp"

namespace awd::obs {
namespace {

/// Every test runs with collection on and restores the previous state.
/// When the layer is compiled out (-DAWD_OBS_RUNTIME=OFF) every write is a
/// no-op by design, so collection-dependent tests skip.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    if (!enabled()) GTEST_SKIP() << "observability compiled out (AWD_OBS_DISABLED)";
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = true;
};

TEST_F(ObsTest, CounterConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterIncByDelta) {
  Registry reg;
  Counter& c = reg.counter("test_delta_total");
  c.inc(5);
  c.inc(0);
  c.inc(7);
  EXPECT_EQ(c.value(), 12u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreLeInclusive) {
  Registry reg;
  Histogram& h = reg.histogram("test_hist", {1.0, 2.0, 4.0});
  // "le" semantics: bucket i counts v <= bounds[i]; last bucket is +inf.
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive upper bound)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // +inf bucket
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST_F(ObsTest, HistogramConcurrentObservationsSumExactly) {
  Registry reg;
  Histogram& h = reg.histogram("test_hist_mt", {10.0, 20.0});
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(static_cast<double>(i % 30));
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : h.counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Obs, HistogramRejectsBadBounds) {
  Registry reg;
  EXPECT_THROW(reg.histogram("test_bad_empty", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test_bad_order", {2.0, 1.0}), std::invalid_argument);
}

TEST(Obs, DisabledModeIsANoOp) {
  const bool was_enabled = enabled();
  Registry reg;
  Counter& c = reg.counter("test_disabled_total");
  Gauge& g = reg.gauge("test_disabled_gauge");
  Histogram& h = reg.histogram("test_disabled_hist", {1.0});
  Timer& t = reg.timer("test_disabled_timer");
  set_enabled(false);
  c.inc(100);
  g.set(42);
  h.observe(0.5);
  t.record(1000);
  set_enabled(was_enabled);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(t.count(), 0u);
}

TEST_F(ObsTest, GaugeRecordMaxKeepsHighWaterMark) {
  Registry reg;
  Gauge& g = reg.gauge("test_hwm");
  g.record_max(3);
  g.record_max(9);
  g.record_max(5);
  EXPECT_EQ(g.value(), 9);
}

TEST_F(ObsTest, TimerTracksCountTotalMinMax) {
  Registry reg;
  Timer& t = reg.timer("test_timer");
  t.record(30);
  t.record(10);
  t.record(20);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.total_ns(), 60u);
  EXPECT_EQ(t.min_ns(), 10u);
  EXPECT_EQ(t.max_ns(), 30u);
}

TEST_F(ObsTest, RegistryFindOrCreateReturnsSameHandle) {
  Registry reg;
  Counter& a = reg.counter("test_same");
  Counter& b = reg.counter("test_same");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObsTest, RegistryResetZeroesValuesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("test_reset_total");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(reg.counter("test_reset_total").value(), 1u);
}

TEST(Obs, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("zzz_total");
  reg.counter("aaa_total");
  reg.counter("mmm_total");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aaa_total");
  EXPECT_EQ(snap.counters[1].name, "mmm_total");
  EXPECT_EQ(snap.counters[2].name, "zzz_total");
}

TEST_F(ObsTest, PrometheusTextContainsRegisteredSeries) {
  Registry reg;
  reg.counter("test_prom_total", "help text").inc(3);
  Histogram& h = reg.histogram("test_prom_hist", {1.0, 2.0});
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total 3"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 2"), std::string::npos);
}

TEST_F(ObsTest, HistogramQuantileInterpolatesWithinBuckets) {
  MetricsSnapshot::HistogramSample h;
  h.bounds = {10.0, 20.0, 40.0};
  // 10 observations <= 10, 10 in (10, 20], none in (20, 40], 0 above.
  h.counts = {10, 10, 0, 0};
  h.count = 20;
  // p50 lands exactly at the first bucket's upper edge (rank 10 of 10 in
  // [0, 10]); p75 is halfway through the second bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.50), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.75), 15.0);
  // q clamps to [0, 1]; an empty histogram reads 0.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 2.0), histogram_quantile(h, 1.0));
  MetricsSnapshot::HistogramSample empty;
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);
}

TEST_F(ObsTest, HistogramQuantileClampsInfBucketToLastFiniteBound) {
  MetricsSnapshot::HistogramSample h;
  h.bounds = {1.0, 2.0};
  h.counts = {0, 0, 5};  // everything in +Inf
  h.count = 5;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 2.0);
}

TEST_F(ObsTest, PrometheusTextCarriesQuantileGauges) {
  Registry reg;
  Histogram& h = reg.histogram("test_prom_quant", {1.0, 2.0, 4.0});
  for (int i = 0; i < 8; ++i) h.observe(0.5);   // p50 inside bucket 0
  for (int i = 0; i < 2; ++i) h.observe(3.0);   // tail in (2, 4]
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE test_prom_quant_p50 gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_quant_p99 gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_quant_p50 "), std::string::npos);
  EXPECT_NE(text.find("test_prom_quant_p99 "), std::string::npos);
  // An empty histogram exports buckets but no quantile gauges (count 0).
  Registry reg_empty;
  (void)reg_empty.histogram("test_prom_empty", {1.0});
  const std::string empty_text = prometheus_text(reg_empty.snapshot());
  EXPECT_EQ(empty_text.find("test_prom_empty_p50"), std::string::npos);
}

TEST_F(ObsTest, WriteObsDirIncludesEventsJsonl) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "awd_obs_events_test";
  std::filesystem::remove_all(dir);
  EventLog::global().clear();
  EventLog::global().log(EventKind::kAlarm, 5, 0, 99, 4, 12, "adaptive");
  ASSERT_TRUE(write_obs_dir(dir.string()).is_ok());
  std::ifstream in(dir / "events.jsonl");
  ASSERT_TRUE(in.good()) << "write_obs_dir must materialize events.jsonl";
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"event\": \"alarm\""), std::string::npos);
  EXPECT_NE(text.str().find("\"stream\": 5"), std::string::npos);
  EXPECT_NE(text.str().find("\"step\": 99"), std::string::npos);
  EventLog::global().clear();
  std::filesystem::remove_all(dir);
}

TEST(Obs, ObsSessionStripsObsOutFromArgv) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "awd_obs_session_test";
  const std::string flag = "--obs-out=" + dir.string();
  std::string prog = "prog";
  std::string keep = "--benchmark_filter=x";
  std::vector<char*> argv = {prog.data(), const_cast<char*>(flag.c_str()), keep.data()};
  int argc = static_cast<int>(argv.size());
  {
    ObsSession session(argc, argv.data());
    EXPECT_TRUE(session.active());
    EXPECT_EQ(session.dir(), dir.string());
    ASSERT_EQ(argc, 2);
    EXPECT_EQ(std::string(argv[1]), keep);
  }
  EXPECT_TRUE(std::filesystem::exists(dir / "metrics.json"));
  std::filesystem::remove_all(dir);
}

// End-to-end: run the detection pipeline with the tracer on, export to a
// directory, and parse the Chrome trace back.  The trace must be valid
// trace-event JSON and contain spans for all five DetectionSystem::step
// stages.
TEST_F(ObsTest, ChromeTraceRoundTripHasAllFiveStageSpans) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "awd_obs_trace_test";
  std::filesystem::remove_all(dir);

  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    const core::SimulatorCase scase = core::simulator_case("series_rlc");
    core::DetectionSystem system(scase, core::AttackKind::kBias, 1);
    (void)system.run(80);
  }
  tracer.stop();
  ASSERT_TRUE(write_obs_dir(dir.string()).is_ok());

  bool ok = false;
  const std::vector<LoadedSpan> spans = load_chrome_trace((dir / "trace.json").string(), &ok);
  ASSERT_TRUE(ok);
  ASSERT_FALSE(spans.empty());

  const char* kStages[] = {"step.estimate", "step.residual", "step.deadline",
                           "step.window_adapt", "step.detect"};
  for (const char* stage : kStages) {
    std::size_t found = 0;
    for (const LoadedSpan& s : spans) {
      if (s.name == stage && s.ph == 'X') ++found;
    }
    EXPECT_EQ(found, 80u) << "missing spans for stage " << stage;
  }
  // Timestamps are non-decreasing (collect() sorts) and durations finite.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].ts_us, spans[i - 1].ts_us);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ObsTest, MetricsJsonRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "awd_obs_json_test";
  std::filesystem::remove_all(dir);

  Registry::global().reset();
  Registry::global().counter("awd_deadline_cache_hits_total").inc(9);
  Registry::global().counter("awd_deadline_cache_misses_total").inc(1);
  ASSERT_TRUE(write_obs_dir(dir.string()).is_ok());

  bool ok = false;
  const LoadedMetrics loaded = load_metrics_json((dir / "metrics.json").string(), &ok);
  ASSERT_TRUE(ok);

  double hits = -1.0;
  for (const auto& [name, value] : loaded.counters) {
    if (name == "awd_deadline_cache_hits_total") hits = value;
  }
  EXPECT_DOUBLE_EQ(hits, 9.0);
  double rate = -1.0;
  for (const auto& [name, value] : loaded.derived) {
    if (name == "deadline_cache_hit_rate") rate = value;
  }
  EXPECT_DOUBLE_EQ(rate, 0.9);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace awd::obs
