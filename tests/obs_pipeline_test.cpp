// Pipeline-level observability tests: the metrics scraped from a live
// detection run must agree with the ground truth recorded in the trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/detection_system.hpp"
#include "obs/obs.hpp"

namespace awd::obs {
namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    if (!enabled()) GTEST_SKIP() << "observability compiled out (AWD_OBS_DISABLED)";
    Registry::global().reset();
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = true;
};

const MetricsSnapshot::HistogramSample* find_histogram(const MetricsSnapshot& snap,
                                                       const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t counter_value(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// The window-size histogram scraped after an attacked run must be exactly
// the histogram of the per-step window sequence the trace recorded: the
// adaptive detector observes w_c once per step, and StepRecord.window is
// that same w_c.
TEST_F(ObsPipelineTest, WindowHistogramMatchesTraceWindowSequence) {
  const core::SimulatorCase scase = core::simulator_case("aircraft_pitch");
  core::DetectionSystem system(scase, core::AttackKind::kBias, 7);
  const sim::Trace trace = system.run();

  const MetricsSnapshot snap = Registry::global().snapshot();
  const auto* hist = find_histogram(snap, "awd_adaptive_window_size");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->counts.size(), hist->bounds.size() + 1);

  // Recompute with the same "le" bucket rule from the trace.
  std::vector<std::uint64_t> expected(hist->bounds.size() + 1, 0);
  double expected_sum = 0.0;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const double w = static_cast<double>(trace[t].window);
    std::size_t b = hist->bounds.size();
    for (std::size_t i = 0; i < hist->bounds.size(); ++i) {
      if (w <= hist->bounds[i]) {
        b = i;
        break;
      }
    }
    ++expected[b];
    expected_sum += w;
  }

  EXPECT_EQ(hist->count, trace.size());
  EXPECT_DOUBLE_EQ(hist->sum, expected_sum);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(hist->counts[i], expected[i]) << "bucket " << i;
  }
}

// Step/alarm counters must agree with the trace they were scraped from.
TEST_F(ObsPipelineTest, StepAndAlarmCountersMatchTrace) {
  const core::SimulatorCase scase = core::simulator_case("series_rlc");
  core::DetectionSystem system(scase, core::AttackKind::kReplay, 3);
  const sim::Trace trace = system.run();

  std::uint64_t adaptive_alarms = 0;
  std::uint64_t fixed_alarms = 0;
  std::uint64_t unsafe_steps = 0;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (trace[t].adaptive_alarm) ++adaptive_alarms;
    if (trace[t].fixed_alarm) ++fixed_alarms;
    if (trace[t].unsafe) ++unsafe_steps;
  }

  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "awd_detection_steps_total"), trace.size());
  EXPECT_EQ(counter_value(snap, "awd_adaptive_steps_total"), trace.size());
  EXPECT_EQ(counter_value(snap, "awd_logger_entries_total"), trace.size());
  EXPECT_EQ(counter_value(snap, "awd_alarms_adaptive_total"), adaptive_alarms);
  EXPECT_EQ(counter_value(snap, "awd_alarms_fixed_total"), fixed_alarms);
  EXPECT_EQ(counter_value(snap, "awd_unsafe_steps_total"), unsafe_steps);
}

// Identical seeds scrape identical domain metrics (the determinism rule:
// counter/histogram values never hold wall-clock quantities).
TEST_F(ObsPipelineTest, DomainMetricsAreDeterministicAcrossRuns) {
  const core::SimulatorCase scase = core::simulator_case("dc_motor");

  auto run_and_scrape = [&scase] {
    Registry::global().reset();
    core::DetectionSystem system(scase, core::AttackKind::kRamp, 11);
    (void)system.run();
    return Registry::global().snapshot();
  };
  const MetricsSnapshot a = run_and_scrape();
  const MetricsSnapshot b = run_and_scrape();

  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name);
    EXPECT_EQ(a.counters[i].value, b.counters[i].value) << a.counters[i].name;
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].counts, b.histograms[i].counts) << a.histograms[i].name;
    EXPECT_DOUBLE_EQ(a.histograms[i].sum, b.histograms[i].sum) << a.histograms[i].name;
  }
}

}  // namespace
}  // namespace awd::obs
