// mutation_smoke.cpp — does the property harness actually catch bugs?
//
// CMake builds this driver several times: once as a control against the
// pristine library, and once per seeded mutant with exactly one AWD_MUT_*
// macro defined.  Each mutant executable compiles its own copy of the
// mutated translation units (logger.cpp / adaptive.cpp / deadline.cpp), so
// the library archive stays pristine and the mutation never leaks into
// other targets.
//
// Exit code 0 means the expectation held:
//   * control build (no AWD_MUT_EXPECT_CAUGHT): every trial passes;
//   * mutant build (AWD_MUT_EXPECT_CAUGHT): at least one property fails —
//     a mutant surviving the whole catalogue is a harness bug.
#include <iostream>
#include <string>

#include "testkit/property.hpp"
#include "testkit/runner.hpp"

int main() {
  awd::testkit::RunnerOptions options;
  options.seed = 0x5eed2022;
  options.trials = 40;
  options.shrink = false;  // speed: the verdict matters, not the minimization
  options.max_failures = 1;

  const awd::testkit::RunReport report = awd::testkit::run_properties(options);

  std::size_t caught_by = 0;
  for (const awd::testkit::PropertyReport& p : report.properties) {
    if (p.failures == 0) continue;
    ++caught_by;
    std::cout << "caught by " << p.name << " (" << p.failures << "/" << p.trials
              << " trials";
    if (!p.failure_details.empty()) {
      std::cout << "; e.g. " << p.failure_details.front().message;
    }
    std::cout << ")\n";
  }

#ifdef AWD_MUT_EXPECT_CAUGHT
  if (caught_by == 0) {
    std::cout << "MUTANT SURVIVED: no property failed across "
              << report.trials_per_property << " trials each — the harness is blind "
              << "to this bug\n";
    return 1;
  }
  std::cout << "mutant caught by " << caught_by << " propert"
            << (caught_by == 1 ? "y" : "ies") << "\n";
  return 0;
#else
  if (caught_by != 0) {
    std::cout << "CONTROL FAILED: " << report.total_failures()
              << " failures on the pristine library\n";
    return 1;
  }
  std::cout << "control clean: " << report.properties.size() << " properties x "
            << report.trials_per_property << " trials\n";
  return 0;
#endif
}
