// testkit_test.cpp — gtest coverage of the property-testing kit itself:
// deterministic seeding, scenario generation under limits, the shrinker,
// the corpus loader (wired to the committed corpus via AWD_PROP_CORPUS_DIR),
// and the byte-stable JSON report.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "testkit/corpus.hpp"
#include "testkit/property.hpp"
#include "testkit/rng.hpp"
#include "testkit/runner.hpp"
#include "testkit/scenario.hpp"

namespace {

using namespace awd::testkit;

TEST(PropRngTest, SameSeedSameStream) {
  PropRng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(PropRngTest, DifferentSeedsDiverge) {
  PropRng a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 8 && !diverged; ++i) diverged = a.next() != b.next();
  EXPECT_TRUE(diverged);
}

TEST(PropRngTest, UnitStaysInHalfOpenInterval) {
  PropRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PropRngTest, RangeIsInclusiveAndHitsBothEnds) {
  PropRng rng(3);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t v = rng.range(2, 5);
    ASSERT_GE(v, 2u);
    ASSERT_LE(v, 5u);
    lo_hit |= v == 2;
    hi_hit |= v == 5;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(PropRngTest, GaussianIsFiniteAndCentered) {
  PropRng rng(11);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    ASSERT_TRUE(std::isfinite(g));
    sum += g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
}

TEST(PropRngTest, ForkIsDeterministicAndSaltSensitive) {
  PropRng a(99), b(99);
  EXPECT_EQ(a.fork(1), b.fork(1));
  PropRng c(99);
  EXPECT_NE(c.fork(2), PropRng(99).fork(1));
}

TEST(TrialSeedTest, PureAndDistinctAcrossPropertiesAndIndices) {
  EXPECT_EQ(trial_seed(1, "p", 0), trial_seed(1, "p", 0));
  EXPECT_NE(trial_seed(1, "p", 0), trial_seed(1, "p", 1));
  EXPECT_NE(trial_seed(1, "p", 0), trial_seed(1, "q", 0));
  EXPECT_NE(trial_seed(1, "p", 0), trial_seed(2, "p", 0));
}

TEST(CatalogueTest, EighteenUniqueEntriesWithPaperRefs) {
  const auto& cat = property_catalogue();
  EXPECT_EQ(cat.size(), 18u);
  std::set<std::string_view> names;
  for (const Property& p : cat) {
    EXPECT_NE(p.fn, nullptr);
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.paper_ref.empty());
    EXPECT_FALSE(p.summary.empty());
    names.insert(p.name);
  }
  EXPECT_EQ(names.size(), cat.size());
}

TEST(CatalogueTest, FindPropertyRoundTripsAndRejectsUnknown) {
  for (const Property& p : property_catalogue()) {
    const Property* found = find_property(p.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->fn, p.fn);
  }
  EXPECT_EQ(find_property("no_such_property"), nullptr);
}

TEST(GenLimitsTest, DefaultFlagsAreEmpty) {
  EXPECT_EQ(GenLimits{}.flags(), "");
}

TEST(GenLimitsTest, NonDefaultFlagsRoundTripTheReplayContract) {
  GenLimits l;
  l.max_steps = 110;
  l.window_cap = 24;
  l.max_state_dim = 3;
  l.allow_attack = false;
  l.allow_perturbation = false;
  EXPECT_EQ(l.flags(),
            "--max-steps=110 --max-window=24 --max-dim=3 --no-attack --no-perturb");
}

TEST(ScenarioTest, GenerationRespectsLimitsAndValidates) {
  GenLimits limits;
  limits.max_steps = 90;
  limits.window_cap = 12;
  limits.max_state_dim = 3;
  for (std::uint64_t s = 0; s < 50; ++s) {
    PropRng rng(mix64(s));
    const Scenario sc = generate_scenario(rng, limits);
    EXPECT_LE(sc.scase.steps, 90u);
    EXPECT_LE(sc.scase.max_window, 12u);
    EXPECT_LE(sc.scase.model.state_dim(), 3u);
    EXPECT_NO_THROW(sc.scase.validate());
    EXPECT_FALSE(sc.describe().empty());
  }
}

TEST(ScenarioTest, NoAttackLimitForcesKindNone) {
  GenLimits limits;
  limits.allow_attack = false;
  for (std::uint64_t s = 0; s < 20; ++s) {
    PropRng rng(mix64(s + 1000));
    const Scenario sc = generate_scenario(rng, limits);
    EXPECT_EQ(sc.attack, awd::core::AttackKind::kNone);
    EXPECT_EQ(sc.scase.attack_duration, 0u);
  }
}

TEST(ScenarioTest, SameSeedSameScenario) {
  PropRng a(0xabc), b(0xabc);
  const Scenario x = generate_scenario(a, {});
  const Scenario y = generate_scenario(b, {});
  EXPECT_EQ(x.family, y.family);
  EXPECT_EQ(x.sim_seed, y.sim_seed);
  EXPECT_EQ(x.scase.steps, y.scase.steps);
  EXPECT_EQ(x.scase.max_window, y.scase.max_window);
  EXPECT_EQ(x.describe(), y.describe());
}

PropertyResult always_fails(std::uint64_t, const GenLimits&) {
  return PropertyResult::fail("always");
}

PropertyResult throws_logic_error(std::uint64_t, const GenLimits&) {
  throw std::logic_error("boom");
}

PropertyResult fails_only_with_attack(std::uint64_t, const GenLimits& limits) {
  return limits.allow_attack ? PropertyResult::fail("attack-dependent")
                             : PropertyResult::pass();
}

TEST(RunnerTest, RunSingleFoldsExceptionsIntoFailures) {
  const Property p{"thrower", "-", "-", &throws_logic_error};
  const PropertyResult r = run_single(p, 1, {});
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.message.find("boom"), std::string::npos);
}

TEST(RunnerTest, ShrinkerReachesMinimalLimitsOnAlwaysFailing) {
  const Property p{"always", "-", "-", &always_fails};
  std::string msg;
  std::size_t evals = 0;
  const GenLimits shrunk = shrink_failure(p, 1, {}, &msg, &evals);
  EXPECT_FALSE(shrunk.allow_attack);
  EXPECT_FALSE(shrunk.allow_perturbation);
  EXPECT_EQ(shrunk.max_state_dim, 1u);
  EXPECT_EQ(shrunk.window_cap, 4u);
  EXPECT_EQ(shrunk.max_steps, 24u);
  EXPECT_EQ(msg, "always");
  EXPECT_LE(evals, 48u);
}

TEST(RunnerTest, ShrinkerKeepsTheFailureFailing) {
  const Property p{"attacky", "-", "-", &fails_only_with_attack};
  std::string msg;
  const GenLimits shrunk = shrink_failure(p, 1, {}, &msg, nullptr);
  // Dropping the attack would make the property pass, so the shrinker must
  // keep it while still tightening everything orthogonal to the failure.
  EXPECT_TRUE(shrunk.allow_attack);
  EXPECT_EQ(shrunk.max_steps, 24u);
  EXPECT_EQ(msg, "attack-dependent");
}

TEST(RunnerTest, UnknownPropertyThrows) {
  RunnerOptions options;
  options.properties = {"definitely_not_registered"};
  EXPECT_THROW((void)run_properties(options), std::invalid_argument);
}

TEST(RunnerTest, ReplayCommandCarriesSeedAndShrunkFlags) {
  FailureReport f;
  f.property = "no_escape_shrink";
  f.trial_seed = 123456789;
  f.shrunk_limits.allow_attack = false;
  const std::string cmd = replay_command("tools/awd_prop_fuzz", f);
  EXPECT_EQ(cmd,
            "tools/awd_prop_fuzz --property=no_escape_shrink --replay=123456789 "
            "--no-attack");
}

TEST(RunnerTest, JsonReportIsByteStable) {
  RunReport report;
  report.seed = 7;
  report.trials_per_property = 2;
  PropertyReport pr;
  pr.name = "demo \"quoted\"";
  pr.trials = 2;
  pr.failures = 1;
  FailureReport f;
  f.property = pr.name;
  f.trial_index = 1;
  f.trial_seed = 99;
  f.message = "line1\nline2";
  f.shrunk_message = f.message;
  f.replay = "x --replay=99";
  pr.failure_details.push_back(f);
  report.properties.push_back(pr);

  std::ostringstream a, b;
  write_json_report(report, a);
  write_json_report(report, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"demo \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(a.str().find("line1\\nline2"), std::string::npos);
  EXPECT_NE(a.str().find("\"total_failures\": 1"), std::string::npos);
}

TEST(RunnerTest, FixedSeedRunIsReproducible) {
  RunnerOptions options;
  options.trials = 3;
  options.properties = {"replay_determinism", "deadline_brute_force_walk"};
  const RunReport a = run_properties(options);
  const RunReport b = run_properties(options);
  std::ostringstream ja, jb;
  write_json_report(a, ja);
  write_json_report(b, jb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(a.total_failures(), 0u);
}

TEST(CorpusTest, ParseRejectsMissingAndMalformedFields) {
  const std::string dir = ::testing::TempDir();
  const std::string no_prop = dir + "/no_prop.json";
  std::ofstream(no_prop) << "{\"seed\": 12}\n";
  EXPECT_THROW((void)parse_corpus_file(no_prop), std::runtime_error);

  const std::string bad_seed = dir + "/bad_seed.json";
  std::ofstream(bad_seed) << "{\"property\": \"x\", \"seed\": \"12abc\"}\n";
  EXPECT_THROW((void)parse_corpus_file(bad_seed), std::runtime_error);

  EXPECT_THROW((void)load_corpus(dir + "/does_not_exist"), std::runtime_error);
}

TEST(CorpusTest, ParseReadsAllFields) {
  const std::string path = ::testing::TempDir() + "/entry.json";
  std::ofstream(path) << "{\n  \"property\": \"no_escape_shrink\",\n"
                         "  \"seed\": 18446744073709551615,\n"
                         "  \"family\": \"dc_motor\",\n  \"note\": \"max seed\"\n}\n";
  const CorpusEntry e = parse_corpus_file(path);
  EXPECT_EQ(e.property, "no_escape_shrink");
  EXPECT_EQ(e.seed, 18446744073709551615ull);
  EXPECT_EQ(e.family, "dc_motor");
  EXPECT_EQ(e.note, "max seed");
}

// The committed corpus (tests/prop/corpus/*.json) must stay loadable, name
// only registered properties, cover every plant family, and — the point of
// committing it — keep passing when replayed in-process.
TEST(CorpusTest, CommittedCorpusLoadsAndReplaysClean) {
  const std::vector<CorpusEntry> corpus = load_corpus(AWD_PROP_CORPUS_DIR);
  ASSERT_GE(corpus.size(), 5u);

  std::set<std::string> families;
  for (const CorpusEntry& e : corpus) {
    const Property* p = find_property(e.property);
    ASSERT_NE(p, nullptr) << e.path << " names unknown property " << e.property;
    if (!e.family.empty()) families.insert(e.family);
    const PropertyResult r = run_single(*p, e.seed, {});
    EXPECT_TRUE(r.passed) << e.path << " (" << e.property << " seed " << e.seed
                          << "): " << r.message;
  }
  for (const std::string& fam : plant_families()) {
    EXPECT_TRUE(families.count(fam)) << "no corpus entry exercises family " << fam;
  }
}

}  // namespace
