// Cross-backend soundness differential (DESIGN.md §17): over every seed
// plant and the four representative attack kinds, states drawn from real
// attacked pipeline runs and from a seeded random cloud must satisfy the
// backend ordering the theory dictates —
//
//   * BoxBackend's cached walk is bit-identical to the uncached reach-box
//     recursion (the pre-refactor estimator's exact semantics);
//   * EllipsoidBackend never promises more time than the box walk (its
//     reach sets enclose the box sets, so its deadlines are conservative);
//   * TableBackend never promises more time than the box walk anywhere in
//     its precomputed domain (each cell stores an inflated-walk lower
//     bound).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/detection_system.hpp"
#include "reach/backend.hpp"
#include "reach/deadline.hpp"
#include "reach/ellipsoid.hpp"
#include "reach/table.hpp"

namespace awd::reach {
namespace {

constexpr const char* kPlants[] = {"aircraft_pitch", "vehicle_turning", "series_rlc",
                                   "dc_motor"};
constexpr core::AttackKind kAttacks[] = {core::AttackKind::kBias,
                                         core::AttackKind::kReplay,
                                         core::AttackKind::kFreeze,
                                         core::AttackKind::kRamp};
constexpr int kSeedsPerAttack = 13;  // 4 attacks x 13 = 52 seeds per plant

struct BackendTriple {
  std::unique_ptr<Backend> box;
  std::unique_ptr<Backend> ellipsoid;
  std::unique_ptr<Backend> table;
  Box domain = Box::unbounded(0);
};

BackendTriple make_triple(const core::SimulatorCase& scase) {
  core::SimulatorCase tuned = scase;
  // Grid resolution chosen so cells^dim stays well under the table cap on
  // every seed plant.
  tuned.reach_table_cells = tuned.model.state_dim() <= 3 ? 8 : 4;

  BackendSpec spec = core::make_backend_spec(tuned, /*init_radius=*/0.0,
                                             /*budget_steps=*/0);
  BackendTriple triple;
  triple.domain = spec.table.domain;

  spec.kind = BackendKind::kBox;
  triple.box = make_backend(spec).value();
  spec.kind = BackendKind::kEllipsoid;
  triple.ellipsoid = make_backend(spec).value();
  spec.kind = BackendKind::kTable;
  triple.table = make_backend(spec).value();
  return triple;
}

void check_probe(const BackendTriple& t, const Vec& x, const char* plant,
                 const char* context) {
  const auto& box = dynamic_cast<const BoxBackend&>(*t.box);
  const std::size_t t_box = box.estimate(x);
  ASSERT_EQ(t_box, box.estimate_uncached(x))
      << plant << " " << context << ": cached box walk diverged from the recursion";
  const std::size_t t_ell = t.ellipsoid->estimate(x);
  EXPECT_LE(t_ell, t_box) << plant << " " << context
                          << ": ellipsoid deadline over-promises";
  if (t.domain.contains(x)) {
    const std::size_t t_tab = t.table->estimate(x);
    EXPECT_LE(t_tab, t_box) << plant << " " << context
                            << ": table deadline over-promises in-domain";
  }
}

TEST(BackendDifferential, SoundOverPlantsAttacksAndSeeds) {
  for (const char* plant : kPlants) {
    const core::SimulatorCase scase = core::simulator_case(plant);
    const BackendTriple triple = make_triple(scase);
    const std::size_t n = scase.model.state_dim();

    // Real attacked pipelines: probe the estimate stream the deadline
    // estimator would actually be seeded from.
    std::uint64_t seed = 1;
    for (const core::AttackKind attack : kAttacks) {
      for (int s = 0; s < kSeedsPerAttack; ++s, ++seed) {
        core::DetectionSystem system(scase, attack, seed);
        const sim::Trace trace = system.run(80);
        for (std::size_t k = 4; k < trace.size(); k += 8) {
          SCOPED_TRACE(trace[k].t);
          check_probe(triple, trace[k].estimate, plant, "attacked run");
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }

    // A seeded random cloud around the reference, wide enough to cross the
    // safe boundary for some draws.
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    auto next_unit = [&rng]() {  // xorshift into [-1, 1)
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return static_cast<double>(static_cast<std::int64_t>(rng >> 11)) / (1ULL << 52) -
             1.0;
    };
    for (int s = 0; s < 60; ++s) {
      Vec x = scase.reference;
      for (std::size_t i = 0; i < n; ++i) x[i] += 3.0 * next_unit();
      check_probe(triple, x, plant, "random cloud");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(BackendDifferential, PipelineRunsBitIdenticalAcrossSharedBoxBackend) {
  // A DetectionSystem run with the default-built backend and one with an
  // explicitly shared BoxBackend of the same spec must agree bitwise — the
  // serving engine's per-family sharing rests on this.
  const core::SimulatorCase scase = core::simulator_case("dc_motor");
  core::DetectionSystem baseline(scase, core::AttackKind::kBias, 7);
  const sim::Trace expect = baseline.run(120);

  core::DetectionSystemOptions options;
  options.shared_deadline_estimator = baseline.estimator_handle();
  core::DetectionSystem shared(scase, core::AttackKind::kBias, 7, options);
  const sim::Trace got = shared.run(120);

  ASSERT_EQ(expect.size(), got.size());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    ASSERT_EQ(expect[k].deadline, got[k].deadline) << k;
    ASSERT_EQ(expect[k].adaptive_alarm, got[k].adaptive_alarm) << k;
  }
}

}  // namespace
}  // namespace awd::reach
