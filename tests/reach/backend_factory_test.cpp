// make_backend factory contract (DESIGN.md §17): typed kInvalidInput on
// every malformed spec (never an exception across the Result boundary),
// kind dispatch to the right concrete backend, and spec-fingerprint
// stability — the identity the serving engine's per-family sharing and the
// precomputed table files both key on.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/config.hpp"
#include "reach/backend.hpp"
#include "reach/deadline.hpp"
#include "reach/ellipsoid.hpp"
#include "reach/table.hpp"

namespace awd::reach {
namespace {

using core::StatusCode;

/// A valid table-capable spec for a small plant; every test mutates a copy.
BackendSpec base_spec() {
  core::SimulatorCase scase = core::simulator_case("series_rlc");
  scase.reach_backend = BackendKind::kTable;
  scase.reach_table_cells = 6;
  return core::make_backend_spec(scase, /*init_radius=*/0.05, /*budget_steps=*/0);
}

void expect_invalid(const BackendSpec& spec, const char* why) {
  const core::Result<std::unique_ptr<Backend>> r = make_backend(spec);
  ASSERT_FALSE(r.is_ok()) << why;
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput) << why;
}

TEST(BackendFactory, RejectsMalformedSpecsWithTypedStatus) {
  {
    BackendSpec spec = base_spec();
    spec.u_range = Box::unbounded(spec.model.input_dim());
    expect_invalid(spec, "unbounded u_range");
  }
  {
    BackendSpec spec = base_spec();
    spec.u_range = Box::unbounded(spec.model.input_dim() + 1);
    expect_invalid(spec, "u_range dimension mismatch");
  }
  {
    BackendSpec spec = base_spec();
    spec.eps = -0.5;
    expect_invalid(spec, "negative eps");
  }
  {
    BackendSpec spec = base_spec();
    spec.safe_set = Box::unbounded(spec.model.state_dim() + 1);
    expect_invalid(spec, "safe set dimension mismatch");
  }
  {
    BackendSpec spec = base_spec();
    spec.deadline.init_radius = -1.0;
    expect_invalid(spec, "negative init_radius");
  }
  {
    BackendSpec spec = base_spec();
    spec.deadline.max_window = 0;
    expect_invalid(spec, "zero horizon");
  }
  {
    BackendSpec spec = base_spec();
    spec.kind = BackendKind::kEllipsoid;
    spec.ellipsoid.inflation = -1e-3;
    expect_invalid(spec, "negative ellipsoid inflation");
  }
  {
    BackendSpec spec = base_spec();
    spec.table.cells_per_dim = 0;
    expect_invalid(spec, "zero-cell grid");
  }
  {
    BackendSpec spec = base_spec();
    spec.table.cells_per_dim = 2048;  // 2048^2 cells > kMaxTableCells
    expect_invalid(spec, "grid over the cell cap");
  }
  {
    BackendSpec spec = base_spec();
    spec.table.domain = Box::unbounded(spec.model.state_dim());
    expect_invalid(spec, "unbounded table domain");
  }
  {
    BackendSpec spec = base_spec();
    spec.deadline.max_window = kMaxTableWindow + 1;
    expect_invalid(spec, "horizon beyond the u16 cell encoding");
  }
}

TEST(BackendFactory, DispatchesOnKindAndStampsTheFingerprint) {
  const struct {
    BackendKind kind;
    std::string_view name;
  } cases[] = {{BackendKind::kBox, "box"},
               {BackendKind::kEllipsoid, "ellipsoid"},
               {BackendKind::kTable, "table"}};
  for (const auto& c : cases) {
    BackendSpec spec = base_spec();
    spec.kind = c.kind;
    core::Result<std::unique_ptr<Backend>> r = make_backend(spec);
    ASSERT_TRUE(r.is_ok()) << c.name;
    const std::unique_ptr<Backend> backend = std::move(r).value();
    EXPECT_EQ(backend->kind(), c.kind);
    EXPECT_EQ(backend->name(), c.name);
    EXPECT_EQ(backend->fingerprint(), spec_fingerprint(spec));
    EXPECT_EQ(backend->state_dim(), spec.model.state_dim());
  }
  // The concrete types the factory dispatches to.
  BackendSpec spec = base_spec();
  spec.kind = BackendKind::kBox;
  EXPECT_NE(dynamic_cast<BoxBackend*>(make_backend(spec).value().get()), nullptr);
  spec.kind = BackendKind::kEllipsoid;
  EXPECT_NE(dynamic_cast<EllipsoidBackend*>(make_backend(spec).value().get()), nullptr);
  spec.kind = BackendKind::kTable;
  EXPECT_NE(dynamic_cast<TableBackend*>(make_backend(spec).value().get()), nullptr);
}

TEST(BackendFactory, FingerprintTracksAnswerChangingKnobsOnly) {
  const BackendSpec spec = base_spec();
  EXPECT_EQ(spec_fingerprint(spec), spec_fingerprint(spec)) << "not deterministic";

  BackendSpec other = spec;
  other.eps += 1e-6;
  EXPECT_NE(spec_fingerprint(other), spec_fingerprint(spec)) << "eps ignored";

  other = spec;
  other.deadline.max_window += 1;
  EXPECT_NE(spec_fingerprint(other), spec_fingerprint(spec)) << "horizon ignored";

  other = spec;
  other.kind = BackendKind::kEllipsoid;
  EXPECT_NE(spec_fingerprint(other), spec_fingerprint(spec)) << "kind ignored";

  // Table grid knobs are part of the table backend's identity...
  other = spec;
  other.table.cells_per_dim += 1;
  EXPECT_NE(spec_fingerprint(other), spec_fingerprint(spec))
      << "grid shape ignored for kTable";

  // ...but must NOT perturb a box backend's identity, or the serving
  // engine's sharing key would split identical estimators.
  BackendSpec box_a = spec;
  box_a.kind = BackendKind::kBox;
  BackendSpec box_b = box_a;
  box_b.table.cells_per_dim += 3;
  box_b.table.domain = Box::unbounded(0);
  EXPECT_EQ(spec_fingerprint(box_a), spec_fingerprint(box_b))
      << "kBox fingerprint depends on table-only knobs";
  BackendSpec box_c = box_a;
  box_c.ellipsoid.inflation *= 2.0;
  EXPECT_EQ(spec_fingerprint(box_a), spec_fingerprint(box_c))
      << "kBox fingerprint depends on ellipsoid-only knobs";
}

TEST(BackendFactory, CheckedPathTypedErrorsAndTableBudgetImmunity) {
  BackendSpec spec = base_spec();
  spec.deadline.budget_steps = 1;  // brutal budget: one reach query per period

  spec.kind = BackendKind::kBox;
  const std::unique_ptr<Backend> box = make_backend(spec).value();
  spec.kind = BackendKind::kTable;
  const std::unique_ptr<Backend> table = make_backend(spec).value();

  const Vec probe = spec.table.domain.center();

  // Mis-shaped and non-finite seeds come back as kInvalidInput, never throw.
  const Vec short_seed(spec.model.state_dim() + 1, 0.0);
  EXPECT_EQ(box->estimate_checked(short_seed).status().code(),
            StatusCode::kInvalidInput);
  Vec nan_seed = probe;
  nan_seed[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(table->estimate_checked(nan_seed).status().code(),
            StatusCode::kInvalidInput);

  // The table resolves every query in one lookup, so the budget never binds
  // there — while the walk backend with budget 1 must yield whenever the
  // boundary is further than one step out.
  const core::Result<std::size_t> via_table = table->estimate_checked(probe);
  ASSERT_TRUE(via_table.is_ok());
  EXPECT_EQ(via_table.value(), table->estimate(probe));
  const core::Result<std::size_t> via_box = box->estimate_checked(probe);
  if (!via_box.is_ok()) {
    EXPECT_EQ(via_box.status().code(), StatusCode::kBudgetExceeded);
  }
}

}  // namespace
}  // namespace awd::reach
