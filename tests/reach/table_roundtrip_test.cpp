// Deadline-table round-trip (DESIGN.md §17): precompute → ckpt encode →
// decode → serve must be bitwise lossless — the decoded backend answers
// every grid cell exactly like the freshly built one — and the codec must
// reject tampered bytes and tables precomputed for a different
// configuration instead of serving them.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "reach/backend.hpp"
#include "reach/table.hpp"

namespace awd::reach {
namespace {

using core::StatusCode;

BackendSpec table_spec(const char* plant, std::size_t cells) {
  core::SimulatorCase scase = core::simulator_case(plant);
  scase.reach_backend = BackendKind::kTable;
  scase.reach_table_cells = cells;
  return core::make_backend_spec(scase, /*init_radius=*/0.0, /*budget_steps=*/0);
}

/// Center of cell `linear` (row-major, last dimension fastest).
Vec cell_center(const DeadlineTable& t, std::size_t linear) {
  Vec x(t.dim);
  for (std::size_t d = t.dim; d-- > 0;) {
    const std::size_t count = t.cells[d];
    const std::size_t idx = linear % count;
    linear /= count;
    const double width = (t.domain[d].hi - t.domain[d].lo) / static_cast<double>(count);
    x[d] = t.domain[d].lo + (static_cast<double>(idx) + 0.5) * width;
  }
  return x;
}

TEST(TableRoundTrip, EncodeDecodeServesBitwiseAtEveryCell) {
  for (const char* plant : {"aircraft_pitch", "series_rlc"}) {
    SCOPED_TRACE(plant);
    const BackendSpec spec = table_spec(plant, 5);

    core::Result<DeadlineTable> built = build_table(spec);
    ASSERT_TRUE(built.is_ok());
    const DeadlineTable original = std::move(built).value();

    const std::vector<std::uint8_t> bytes = encode_table(original);
    core::Result<DeadlineTable> decoded_r = decode_table(bytes);
    ASSERT_TRUE(decoded_r.is_ok()) << decoded_r.status().message();
    const DeadlineTable decoded = std::move(decoded_r).value();

    // Field-for-field identity of the decoded grid.
    EXPECT_EQ(decoded.source_fingerprint, original.source_fingerprint);
    EXPECT_EQ(decoded.source, original.source);
    EXPECT_EQ(decoded.dim, original.dim);
    EXPECT_EQ(decoded.max_window, original.max_window);
    ASSERT_EQ(decoded.cells, original.cells);
    for (std::size_t d = 0; d < original.dim; ++d) {
      EXPECT_EQ(decoded.domain[d].lo, original.domain[d].lo);  // bitwise, not approx
      EXPECT_EQ(decoded.domain[d].hi, original.domain[d].hi);
    }
    ASSERT_EQ(decoded.deadlines, original.deadlines);

    // Serving identity: fresh-build backend vs decoded backend, every cell.
    core::Result<std::unique_ptr<Backend>> fresh_r =
        make_table_backend(spec, original);
    core::Result<std::unique_ptr<Backend>> loaded_r =
        make_table_backend(spec, decoded);
    ASSERT_TRUE(fresh_r.is_ok());
    ASSERT_TRUE(loaded_r.is_ok());
    const std::unique_ptr<Backend> fresh = std::move(fresh_r).value();
    const std::unique_ptr<Backend> loaded = std::move(loaded_r).value();
    EXPECT_EQ(fresh->fingerprint(), loaded->fingerprint());
    for (std::size_t cell = 0; cell < original.deadlines.size(); ++cell) {
      const Vec x = cell_center(original, cell);
      const std::size_t expect = original.deadlines[cell];
      ASSERT_EQ(fresh->estimate(x), expect) << "fresh backend, cell " << cell;
      ASSERT_EQ(loaded->estimate(x), expect) << "decoded backend, cell " << cell;
    }
  }
}

TEST(TableRoundTrip, TamperedBytesNeverServe) {
  const BackendSpec spec = table_spec("series_rlc", 4);
  const DeadlineTable original = build_table(spec).value();
  const std::vector<std::uint8_t> bytes = encode_table(original);

  // Flip one bit at a spread of offsets across header, meta and cell
  // sections.  Either the codec's CRC/framing rejects the image outright,
  // or (for bytes outside any checksummed payload that still decode) the
  // spec cross-check refuses to build a backend from it.
  for (std::size_t off = 0; off < bytes.size(); off += 3) {
    std::vector<std::uint8_t> tampered = bytes;
    tampered[off] ^= 0x40;
    core::Result<DeadlineTable> decoded = decode_table(tampered);
    if (!decoded.is_ok()) continue;
    core::Result<std::unique_ptr<Backend>> served =
        make_table_backend(spec, std::move(decoded).value());
    EXPECT_FALSE(served.is_ok()) << "flipped byte " << off << " served anyway";
  }

  // Truncation at any prefix is a decode failure, not UB.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4}, bytes.size() / 2,
                                 bytes.size() - 1}) {
    EXPECT_FALSE(decode_table(bytes.data(), keep).is_ok()) << "kept " << keep;
  }
}

TEST(TableRoundTrip, ForeignConfigurationRejectedAtLoad) {
  const BackendSpec spec = table_spec("series_rlc", 4);
  const DeadlineTable table = build_table(spec).value();

  {  // Same plant, different ε: the fingerprint cross-check must fire.
    BackendSpec other = spec;
    other.eps += 0.01;
    core::Result<std::unique_ptr<Backend>> r = make_table_backend(other, table);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
    EXPECT_NE(r.status().message().find("different configuration"),
              std::string_view::npos);
  }
  {  // Different grid resolution: shape cross-check.
    BackendSpec other = spec;
    other.table.cells_per_dim += 1;
    EXPECT_FALSE(make_table_backend(other, table).is_ok());
  }
  {  // Different horizon: the cells were capped at the wrong w_m.
    BackendSpec other = spec;
    other.deadline.max_window += 5;
    EXPECT_FALSE(make_table_backend(other, table).is_ok());
  }
  {  // A whole different plant.
    const BackendSpec other = table_spec("aircraft_pitch", 4);
    EXPECT_FALSE(make_table_backend(other, table).is_ok());
  }
  // The spec it was built for still loads — the rejections above are not
  // a stuck-closed gate.
  EXPECT_TRUE(make_table_backend(spec, table).is_ok());
}

}  // namespace
}  // namespace awd::reach
