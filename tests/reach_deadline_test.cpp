// Unit tests for the Detection Deadline Estimator (§3.3).
#include "reach/deadline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "core/config.hpp"

namespace awd::reach {
namespace {

models::DiscreteLti pure_drift() {
  // x_{k+1} = x_k + u_k, u in [-1, 1], no disturbance: the reach interval
  // widens by exactly 1 per step.
  models::DiscreteLti m;
  m.A = linalg::Matrix{{1.0}};
  m.B = linalg::Matrix{{1.0}};
  m.dt = 1.0;
  m.name = "drift";
  return m;
}

TEST(Deadline, ExactStepCountOnDriftSystem) {
  // From x0 = 0 with safe set [-5.5, 5.5], the box leaves S at step 6,
  // so t_d = 5.
  BoxBackend est(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                        Box::from_bounds(Vec{-5.5}, Vec{5.5}), DeadlineConfig{20});
  EXPECT_EQ(est.estimate(Vec{0.0}), 5u);
}

TEST(Deadline, DeadlineShrinksNearTheBoundary) {
  BoxBackend est(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                        Box::from_bounds(Vec{-5.5}, Vec{5.5}), DeadlineConfig{20});
  std::size_t prev = est.estimate(Vec{0.0});
  for (double x = 0.5; x <= 5.0; x += 0.5) {
    const std::size_t d = est.estimate(Vec{x});
    EXPECT_LE(d, prev) << "x=" << x;
    prev = d;
  }
  EXPECT_EQ(est.estimate(Vec{5.0}), 0u);  // next step may already be unsafe
}

TEST(Deadline, CapsAtMaxWindow) {
  // Strongly contracting system never reaches the far-away unsafe set.
  models::DiscreteLti m;
  m.A = linalg::Matrix{{0.1}};
  m.B = linalg::Matrix{{0.01}};
  m.dt = 1.0;
  m.name = "contracting";
  BoxBackend est(m, Box::from_bounds(Vec{-1}, Vec{1}), 0.001,
                        Box::from_bounds(Vec{-100}, Vec{100}), DeadlineConfig{17});
  EXPECT_EQ(est.estimate(Vec{0.0}), 17u);
}

TEST(Deadline, UncertaintyTightensTheDeadline) {
  const Box u = Box::from_bounds(Vec{-1}, Vec{1});
  const Box safe = Box::from_bounds(Vec{-5.5}, Vec{5.5});
  BoxBackend noiseless(pure_drift(), u, 0.0, safe, DeadlineConfig{20});
  BoxBackend noisy(pure_drift(), u, 0.5, safe, DeadlineConfig{20});
  EXPECT_LT(noisy.estimate(Vec{0.0}), noiseless.estimate(Vec{0.0}));
}

TEST(Deadline, InitialRadiusTightensTheDeadline) {
  const Box u = Box::from_bounds(Vec{-1}, Vec{1});
  const Box safe = Box::from_bounds(Vec{-5.5}, Vec{5.5});
  BoxBackend point(pure_drift(), u, 0.0, safe, DeadlineConfig{20, 0.0});
  BoxBackend ball(pure_drift(), u, 0.0, safe, DeadlineConfig{20, 1.0});
  EXPECT_LT(ball.estimate(Vec{0.0}), point.estimate(Vec{0.0}));
}

TEST(Deadline, ConservativelySafePredicate) {
  BoxBackend est(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                        Box::from_bounds(Vec{-5.5}, Vec{5.5}), DeadlineConfig{20});
  const std::size_t td = est.estimate(Vec{0.0});
  EXPECT_TRUE(est.conservatively_safe_at(Vec{0.0}, td));
  EXPECT_FALSE(est.conservatively_safe_at(Vec{0.0}, td + 1));
}

TEST(Deadline, SafeSetDimensionValidated) {
  EXPECT_THROW(BoxBackend(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                                 Box::unbounded(2), DeadlineConfig{10}),
               std::invalid_argument);
}

TEST(Deadline, UnboundedSafeDimensionsNeverConstrain) {
  // Safe set only constrains the pitch angle; the aircraft's other two
  // dimensions can grow arbitrarily without triggering the deadline.
  const core::SimulatorCase scase = core::simulator_case("aircraft_pitch");
  BoxBackend est(scase.model, scase.u_range, scase.eps_reach, scase.safe_set,
                        DeadlineConfig{scase.max_window});
  // At the reference state the system is not conservatively unsafe now.
  EXPECT_GT(est.estimate(scase.reference), 0u);
  // Near the pitch boundary the deadline must be nearly exhausted.
  Vec near = scase.reference;
  near[2] = 2.45;
  EXPECT_LT(est.estimate(near), 4u);
}

TEST(Deadline, CheckedMatchesThrowingPathOnGoodInput) {
  BoxBackend est(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                        Box::from_bounds(Vec{-5.5}, Vec{5.5}), DeadlineConfig{20});
  for (double x : {0.0, 1.0, 3.0, 5.0}) {
    const auto checked = est.estimate_checked(Vec{x});
    ASSERT_TRUE(checked.is_ok()) << x;
    EXPECT_EQ(checked.value(), est.estimate(Vec{x})) << x;
  }
}

TEST(Deadline, CheckedRejectsBadSeeds) {
  BoxBackend est(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                        Box::from_bounds(Vec{-5.5}, Vec{5.5}), DeadlineConfig{20});
  const auto wrong_dim = est.estimate_checked(Vec{0.0, 1.0});
  EXPECT_FALSE(wrong_dim.is_ok());
  EXPECT_EQ(wrong_dim.status().code(), core::StatusCode::kInvalidInput);
  const auto nan_seed =
      est.estimate_checked(Vec{std::numeric_limits<double>::quiet_NaN()});
  EXPECT_FALSE(nan_seed.is_ok());
  EXPECT_EQ(nan_seed.status().code(), core::StatusCode::kInvalidInput);
}

TEST(Deadline, BudgetExhaustionYieldsInsteadOfOverstating) {
  // From x0 = 0 the drift system's deadline is 5.  A budget of 3 reach-box
  // queries cannot resolve it, so the checked search must yield rather than
  // answer max_window.
  BoxBackend est(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                        Box::from_bounds(Vec{-5.5}, Vec{5.5}),
                        DeadlineConfig{20, 0.0, 3});
  const auto starved = est.estimate_checked(Vec{0.0});
  EXPECT_FALSE(starved.is_ok());
  EXPECT_EQ(starved.status().code(), core::StatusCode::kBudgetExceeded);
  // A boundary the budget *can* resolve still answers normally.
  const auto resolved = est.estimate_checked(Vec{4.0});  // t_d = 1 < budget
  ASSERT_TRUE(resolved.is_ok());
  EXPECT_EQ(resolved.value(), 1u);
  // The throwing path is budget-free by contract.
  EXPECT_EQ(est.estimate(Vec{0.0}), 5u);
}

TEST(Deadline, NegativeInitRadiusRejectedAtConstruction) {
  EXPECT_THROW(BoxBackend(pure_drift(), Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
                                 Box::from_bounds(Vec{-5.5}, Vec{5.5}),
                                 DeadlineConfig{20, -1.0}),
               std::invalid_argument);
}

// The cached walk (precomputed x0-independent terms) must agree with the
// uncached reach-box recursion bit-for-bit: same terms, same operation
// order.  Probe all four low-dimensional model-bank plants plus the
// 12-state quadrotor with 200 seeded random states each.
TEST(Deadline, CachedMatchesUncachedAcrossPlants) {
  const char* keys[] = {"aircraft_pitch", "vehicle_turning", "series_rlc", "dc_motor",
                        "quadrotor"};
  for (const char* key : keys) {
    const core::SimulatorCase scase = core::simulator_case(key);
    BoxBackend est(scase.model, scase.u_range,
                          scase.eps_reach == 0.0 ? scase.eps : scase.eps_reach,
                          scase.safe_set, DeadlineConfig{scase.max_window});
    const std::size_t n = scase.model.state_dim();
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    auto next_unit = [&rng]() {  // xorshift into [-1, 1)
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return static_cast<double>(static_cast<std::int64_t>(rng >> 11)) / (1ULL << 52) - 1.0;
    };
    for (int s = 0; s < 200; ++s) {
      // Random seed states around the reference, scaled so the sample set
      // crosses the safe boundary for some draws (deadline varies).
      Vec x0 = scase.reference;
      for (std::size_t i = 0; i < n; ++i) x0[i] += 3.0 * next_unit();
      ASSERT_EQ(est.estimate(x0), est.estimate_uncached(x0))
          << key << " seed " << s;
    }
  }
}

TEST(Deadline, CachedRespectsInitRadiusTerm) {
  const core::SimulatorCase scase = core::simulator_case("aircraft_pitch");
  BoxBackend est(scase.model, scase.u_range, scase.eps, scase.safe_set,
                        DeadlineConfig{scase.max_window, 0.15});
  Vec x0 = scase.reference;
  for (double pitch : {0.0, 0.5, 1.0, 1.5, 2.0, 2.4}) {
    x0[2] = pitch;
    EXPECT_EQ(est.estimate(x0), est.estimate_uncached(x0)) << pitch;
  }
}

// Property: the deadline is monotone in the safe-set size.
TEST(Deadline, MonotoneInSafeSet) {
  const Box u = Box::from_bounds(Vec{-1}, Vec{1});
  std::size_t prev = 0;
  for (double half : {2.0, 4.0, 8.0, 16.0}) {
    BoxBackend est(pure_drift(), u, 0.1,
                          Box::from_bounds(Vec{-half}, Vec{half}), DeadlineConfig{50});
    const std::size_t d = est.estimate(Vec{0.0});
    EXPECT_GE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace awd::reach
