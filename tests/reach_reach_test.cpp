// Unit and property tests for the reachable-set over-approximation (§3.2-3.4).
#include "reach/reach.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.hpp"
#include "models/discretize.hpp"
#include "models/model_bank.hpp"
#include "reach/support.hpp"
#include "sim/noise.hpp"

namespace awd::reach {
namespace {

models::DiscreteLti scalar_model(double a, double b) {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{a}};
  m.B = linalg::Matrix{{b}};
  m.dt = 0.1;
  m.name = "scalar";
  return m;
}

TEST(Reach, StepZeroIsTheInitialState) {
  ReachSystem rs(scalar_model(0.9, 1.0), Box::from_bounds(Vec{-1}, Vec{1}), 0.1, 10);
  const Box r0 = rs.reach_box(Vec{2.0}, 0);
  EXPECT_DOUBLE_EQ(r0[0].lo, 2.0);
  EXPECT_DOUBLE_EQ(r0[0].hi, 2.0);
}

TEST(Reach, ScalarOneStepClosedForm) {
  // x1 = a x0 + b u + v: u in [-1,1], |v| <= eps.
  ReachSystem rs(scalar_model(0.5, 2.0), Box::from_bounds(Vec{-1}, Vec{1}), 0.1, 10);
  const Box r1 = rs.reach_box(Vec{4.0}, 1);
  EXPECT_NEAR(r1[0].lo, 0.5 * 4.0 - 2.0 - 0.1, 1e-12);
  EXPECT_NEAR(r1[0].hi, 0.5 * 4.0 + 2.0 + 0.1, 1e-12);
}

TEST(Reach, AsymmetricInputBoxUsesCenter) {
  // u in [0, 4]: center 2, half-width 2.
  ReachSystem rs(scalar_model(1.0, 1.0), Box::from_bounds(Vec{0.0}, Vec{4.0}), 0.0, 5);
  const Box r1 = rs.reach_box(Vec{0.0}, 1);
  EXPECT_NEAR(r1[0].lo, 0.0, 1e-12);
  EXPECT_NEAR(r1[0].hi, 4.0, 1e-12);
}

TEST(Reach, BoxGrowsMonotonicallyForStableSystems) {
  ReachSystem rs(scalar_model(0.95, 1.0), Box::from_bounds(Vec{-1}, Vec{1}), 0.05, 20);
  double prev_width = 0.0;
  for (std::size_t t = 0; t <= 20; ++t) {
    const Box r = rs.reach_box(Vec{0.0}, t);
    const double width = r[0].hi - r[0].lo;
    EXPECT_GE(width, prev_width - 1e-12) << "t=" << t;
    prev_width = width;
  }
}

TEST(Reach, InitialRadiusWidensTheBox) {
  ReachSystem rs(scalar_model(0.9, 1.0), Box::from_bounds(Vec{-1}, Vec{1}), 0.0, 5);
  const Box tight = rs.reach_box(Vec{1.0}, 3, 0.0);
  const Box wide = rs.reach_box(Vec{1.0}, 3, 0.2);
  EXPECT_LT(wide[0].lo, tight[0].lo);
  EXPECT_GT(wide[0].hi, tight[0].hi);
  // The widening at step t is r0 * |a|^t.
  EXPECT_NEAR(tight[0].hi - wide[0].hi, -0.2 * 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(Reach, Validation) {
  const auto m = scalar_model(1.0, 1.0);
  EXPECT_THROW(ReachSystem(m, Box::unbounded(1), 0.1, 5), std::invalid_argument);
  EXPECT_THROW(ReachSystem(m, Box::from_bounds(Vec{-1}, Vec{1}), -0.1, 5),
               std::invalid_argument);
  EXPECT_THROW(ReachSystem(m, Box::from_bounds(Vec{-1, -1}, Vec{1, 1}), 0.1, 5),
               std::invalid_argument);
  ReachSystem rs(m, Box::from_bounds(Vec{-1}, Vec{1}), 0.1, 5);
  EXPECT_THROW((void)rs.reach_box(Vec{0.0}, 6), std::out_of_range);
  EXPECT_THROW((void)rs.reach_box(Vec{0.0, 0.0}, 3), std::invalid_argument);
  EXPECT_THROW((void)rs.reach_box(Vec{0.0}, 3, -1.0), std::invalid_argument);
}

TEST(Reach, BoxBoundsEqualSupportAlongBasisDirections) {
  // The per-dimension table must agree with the generic Eq. (3) support
  // function evaluated at ±e_i.
  const auto sys = models::discretize_zoh(models::aircraft_pitch(), 0.02);
  ReachSystem rs(sys, Box::from_bounds(Vec{-7.0}, Vec{7.0}), 7.8e-3, 15);
  const Vec x0{0.05, -0.01, 0.2};
  for (std::size_t t : {1u, 5u, 15u}) {
    const Box box = rs.reach_box(x0, t);
    for (std::size_t i = 0; i < 3; ++i) {
      const Vec e = Vec::basis(3, i);
      EXPECT_NEAR(box[i].hi, rs.support(x0, t, e), 1e-9);
      EXPECT_NEAR(box[i].lo, -rs.support(x0, t, -e), 1e-9);
    }
  }
}

// THE soundness property (Def. 3.1): every trajectory simulated under
// admissible inputs and bounded disturbances stays inside the reach box.
class ReachContainment : public ::testing::TestWithParam<const char*> {};

TEST_P(ReachContainment, SampledTrajectoriesStayInsideBox) {
  const core::SimulatorCase scase = core::simulator_case(GetParam());
  const double eps = scase.eps_reach == 0.0 ? scase.eps : scase.eps_reach;
  const std::size_t horizon = 12;
  ReachSystem rs(scase.model, scase.u_range, eps, horizon);

  sim::Rng rng(23);
  const Vec x0 = scase.reference;
  const std::size_t n = scase.model.state_dim();
  const std::size_t m = scase.model.input_dim();

  for (int traj = 0; traj < 40; ++traj) {
    Vec x = x0;
    for (std::size_t t = 1; t <= horizon; ++t) {
      // Random admissible input (biased to extremes to stress the corners)
      // and disturbance drawn from the eps ball.
      Vec u(m);
      for (std::size_t j = 0; j < m; ++j) {
        const double r = rng.uniform(0.0, 1.0);
        u[j] = r < 0.4   ? scase.u_range[j].lo
               : r < 0.8 ? scase.u_range[j].hi
                         : rng.uniform(scase.u_range[j].lo, scase.u_range[j].hi);
      }
      x = scase.model.step(x, u) + rng.uniform_in_ball(n, scase.eps);
      EXPECT_TRUE(rs.reach_box(x0, t).contains(x))
          << GetParam() << " traj " << traj << " escaped at step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Plants, ReachContainment,
                         ::testing::Values("aircraft_pitch", "vehicle_turning",
                                           "series_rlc", "dc_motor", "quadrotor",
                                           "testbed_car"));

}  // namespace
}  // namespace awd::reach
