// Unit tests for the geometric set primitives.
#include "reach/sets.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::reach {
namespace {

TEST(Interval, DefaultIsUnbounded) {
  const Interval i;
  EXPECT_TRUE(i.contains(1e300));
  EXPECT_TRUE(i.contains(-1e300));
  EXPECT_FALSE(i.bounded());
  EXPECT_TRUE(i.valid());
}

TEST(Interval, ContainsAndClamp) {
  const Interval i{-1.0, 2.0};
  EXPECT_TRUE(i.contains(-1.0));
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_FALSE(i.contains(2.1));
  EXPECT_DOUBLE_EQ(i.clamp(5.0), 2.0);
  EXPECT_DOUBLE_EQ(i.clamp(-5.0), -1.0);
  EXPECT_DOUBLE_EQ(i.clamp(0.3), 0.3);
  EXPECT_DOUBLE_EQ(i.center(), 0.5);
  EXPECT_DOUBLE_EQ(i.half_width(), 1.5);
}

TEST(Interval, IntervalContainment) {
  const Interval outer{-2.0, 2.0};
  EXPECT_TRUE(outer.contains(Interval{-1.0, 1.0}));
  EXPECT_FALSE(outer.contains(Interval{-3.0, 1.0}));
  const Interval inf;
  EXPECT_TRUE(inf.contains(outer));
}

TEST(Interval, Intersection) {
  EXPECT_TRUE((Interval{0.0, 2.0}).intersects(Interval{2.0, 3.0}));  // touching
  EXPECT_FALSE((Interval{0.0, 1.0}).intersects(Interval{1.5, 3.0}));
}

TEST(Box, FromBoundsAndValidation) {
  const Box b = Box::from_bounds(Vec{-1.0, 0.0}, Vec{1.0, 5.0});
  EXPECT_EQ(b.dim(), 2u);
  EXPECT_TRUE(b.contains(Vec{0.0, 2.0}));
  EXPECT_FALSE(b.contains(Vec{0.0, 6.0}));
  EXPECT_THROW((void)Box::from_bounds(Vec{1.0}, Vec{-1.0}), std::invalid_argument);
  EXPECT_THROW((void)Box::from_bounds(Vec{1.0}, Vec{1.0, 2.0}), std::invalid_argument);
}

TEST(Box, FromCenterHalfwidths) {
  const Box b = Box::from_center_halfwidths(Vec{1.0, -1.0}, Vec{0.5, 2.0});
  EXPECT_DOUBLE_EQ(b[0].lo, 0.5);
  EXPECT_DOUBLE_EQ(b[0].hi, 1.5);
  EXPECT_DOUBLE_EQ(b[1].lo, -3.0);
  EXPECT_THROW((void)Box::from_center_halfwidths(Vec{0.0}, Vec{-0.5}),
               std::invalid_argument);
}

TEST(Box, CenterAndHalfWidths) {
  const Box b = Box::from_bounds(Vec{-1.0, 2.0}, Vec{3.0, 4.0});
  EXPECT_EQ(b.center(), (Vec{1.0, 3.0}));
  EXPECT_EQ(b.half_widths(), (Vec{2.0, 1.0}));
  EXPECT_TRUE(b.bounded());
  const Box ub = Box::unbounded(2);
  EXPECT_FALSE(ub.bounded());
  EXPECT_THROW((void)ub.center(), std::domain_error);
  EXPECT_THROW((void)ub.half_widths(), std::domain_error);
}

TEST(Box, BoxContainsBox) {
  const Box outer = Box::from_bounds(Vec{-2.0, -2.0}, Vec{2.0, 2.0});
  EXPECT_TRUE(outer.contains(Box::from_bounds(Vec{-1.0, -1.0}, Vec{1.0, 1.0})));
  EXPECT_FALSE(outer.contains(Box::from_bounds(Vec{-1.0, -1.0}, Vec{1.0, 3.0})));
  // Unbounded safe set contains any bounded box in the free dimensions.
  Box partial({Interval{}, Interval{-2.0, 2.0}});
  EXPECT_TRUE(partial.contains(Box::from_bounds(Vec{-1e9, -1.0}, Vec{1e9, 1.0})));
  EXPECT_THROW((void)outer.contains(Box::unbounded(3)), std::invalid_argument);
}

TEST(Box, Intersects) {
  const Box a = Box::from_bounds(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  EXPECT_TRUE(a.intersects(Box::from_bounds(Vec{0.5, 0.5}, Vec{2.0, 2.0})));
  // Disjoint in one dimension is enough to miss.
  EXPECT_FALSE(a.intersects(Box::from_bounds(Vec{2.0, 0.0}, Vec{3.0, 1.0})));
}

TEST(Box, ClampProjectsPointwise) {
  const Box b = Box::from_bounds(Vec{-1.0, -1.0}, Vec{1.0, 1.0});
  const Vec p = b.clamp(Vec{5.0, -0.5});
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], -0.5);
  EXPECT_THROW((void)b.clamp(Vec{1.0}), std::invalid_argument);
}

TEST(Box, InvalidIntervalRejected) {
  EXPECT_THROW(Box({Interval{2.0, 1.0}}), std::invalid_argument);
}

TEST(Ball, Membership) {
  const Ball b{Vec{1.0, 0.0}, 2.0};
  EXPECT_TRUE(b.contains(Vec{1.0, 2.0}));
  EXPECT_TRUE(b.contains(Vec{3.0, 0.0}));
  EXPECT_FALSE(b.contains(Vec{3.1, 0.0}));
}

}  // namespace
}  // namespace awd::reach
