// Unit tests for support functions (§3.4 identities).
#include "reach/support.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/noise.hpp"

namespace awd::reach {
namespace {

TEST(Support, BoxAxisDirections) {
  const Box b = Box::from_bounds(Vec{-1.0, 2.0}, Vec{3.0, 5.0});
  EXPECT_DOUBLE_EQ(support_box(b, Vec{1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(support_box(b, Vec{-1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(support_box(b, Vec{0.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(support_box(b, Vec{0.0, -1.0}), -2.0);
}

TEST(Support, BoxGeneralDirectionIsCornerValue) {
  const Box b = Box::from_bounds(Vec{-1.0, -2.0}, Vec{1.0, 2.0});
  // ρ(l) = Σ |l_i| hw_i + l·c for symmetric boxes.
  EXPECT_DOUBLE_EQ(support_box(b, Vec{2.0, -3.0}), 2.0 * 1.0 + 3.0 * 2.0);
}

TEST(Support, UnboundedDimensionOnlyMattersIfTouched) {
  Box b({Interval{}, Interval{-1.0, 1.0}});
  EXPECT_DOUBLE_EQ(support_box(b, Vec{0.0, 1.0}), 1.0);
  EXPECT_THROW((void)support_box(b, Vec{1.0, 0.0}), std::domain_error);
}

TEST(Support, BallFormula) {
  EXPECT_DOUBLE_EQ(support_ball(Vec{0.0, 0.0}, 2.0, Vec{3.0, 4.0}), 2.0 * 5.0);
  EXPECT_DOUBLE_EQ(support_ball(Vec{1.0, 1.0}, 1.0, Vec{1.0, 0.0}), 2.0);
  EXPECT_THROW((void)support_ball(Vec{0.0}, -1.0, Vec{1.0}), std::invalid_argument);
}

TEST(Support, MappedBoxMatchesTransposedDirection) {
  const Box b = Box::from_bounds(Vec{-1.0, -1.0}, Vec{1.0, 1.0});
  const linalg::Matrix m{{2.0, 0.0}, {0.0, 3.0}};
  // ρ_{M B}(l) = ρ_B(Mᵀ l).
  EXPECT_DOUBLE_EQ(support_mapped_box(m, b, Vec{1.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(support_mapped_box(m, b, Vec{1.0, 1.0}), 5.0);
}

TEST(Support, DimensionValidation) {
  const Box b = Box::from_bounds(Vec{-1.0}, Vec{1.0});
  EXPECT_THROW((void)support_box(b, Vec{1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)support_mapped_box(linalg::Matrix(2, 2), b, Vec{1.0, 0.0}),
               std::invalid_argument);
}

// Property: the support function dominates lᵀx for every x in the set.
TEST(Support, DominatesAllMembersProperty) {
  sim::Rng rng(13);
  const Box b = Box::from_bounds(Vec{-1.0, 0.5, -3.0}, Vec{2.0, 1.5, 0.0});
  for (int trial = 0; trial < 200; ++trial) {
    Vec x(3), l(3);
    for (std::size_t i = 0; i < 3; ++i) {
      x[i] = rng.uniform(b[i].lo, b[i].hi);
      l[i] = rng.uniform(-1.0, 1.0);
    }
    EXPECT_LE(l.dot(x), support_box(b, l) + 1e-12);
  }
}

// Property: support functions are sublinear: ρ(l1 + l2) <= ρ(l1) + ρ(l2).
TEST(Support, SubadditivityProperty) {
  sim::Rng rng(17);
  const Box b = Box::from_bounds(Vec{-2.0, -1.0}, Vec{0.5, 4.0});
  for (int trial = 0; trial < 200; ++trial) {
    const Vec l1{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec l2{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_LE(support_box(b, l1 + l2), support_box(b, l1) + support_box(b, l2) + 1e-12);
  }
}

}  // namespace
}  // namespace awd::reach
