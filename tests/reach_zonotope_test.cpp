// Unit and property tests for zonotope reachability.
#include "reach/zonotope.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/config.hpp"
#include "reach/deadline.hpp"
#include "reach/reach.hpp"
#include "sim/noise.hpp"

namespace awd::reach {
namespace {

TEST(Zonotope, PointHasNoExtent) {
  const Zonotope z = Zonotope::point(Vec{1.0, -2.0});
  EXPECT_EQ(z.order(), 0u);
  const Box hull = z.interval_hull();
  EXPECT_DOUBLE_EQ(hull[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(hull[0].hi, 1.0);
}

TEST(Zonotope, FromBoxRoundTrips) {
  const Box b = Box::from_bounds(Vec{-1.0, 2.0}, Vec{3.0, 4.0});
  const Box hull = Zonotope::from_box(b).interval_hull();
  EXPECT_DOUBLE_EQ(hull[0].lo, -1.0);
  EXPECT_DOUBLE_EQ(hull[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(hull[1].lo, 2.0);
  EXPECT_DOUBLE_EQ(hull[1].hi, 4.0);
  EXPECT_THROW((void)Zonotope::from_box(Box::unbounded(2)), std::invalid_argument);
}

TEST(Zonotope, LinearMapRotatesExtent) {
  // Unit square rotated 45°: hull half-width becomes sqrt(2).
  const Zonotope z = Zonotope::from_box(Box::from_bounds(Vec{-1, -1}, Vec{1, 1}));
  const double s = std::sqrt(0.5);
  const Zonotope r = z.linear_map(linalg::Matrix{{s, -s}, {s, s}});
  const Box hull = r.interval_hull();
  EXPECT_NEAR(hull[0].hi, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(hull[1].hi, std::sqrt(2.0), 1e-12);
}

TEST(Zonotope, MinkowskiSumAddsExtents) {
  const Zonotope a = Zonotope::from_box(Box::from_bounds(Vec{0.0}, Vec{2.0}));
  const Zonotope b = Zonotope::from_box(Box::from_bounds(Vec{-1.0}, Vec{1.0}));
  const Box hull = a.minkowski_sum(b).interval_hull();
  EXPECT_DOUBLE_EQ(hull[0].lo, -1.0);
  EXPECT_DOUBLE_EQ(hull[0].hi, 3.0);
}

TEST(Zonotope, SupportMatchesHullOnAxes) {
  const Zonotope z(Vec{1.0, 0.0}, linalg::Matrix{{0.5, 0.2}, {0.0, 0.7}});
  const Box hull = z.interval_hull();
  EXPECT_NEAR(z.support(Vec{1.0, 0.0}), hull[0].hi, 1e-12);
  EXPECT_NEAR(-z.support(Vec{-1.0, 0.0}), hull[0].lo, 1e-12);
  EXPECT_NEAR(z.support(Vec{0.0, 1.0}), hull[1].hi, 1e-12);
}

TEST(Zonotope, ReductionIsSoundOverApproximation) {
  sim::Rng rng(41);
  linalg::Matrix g(2, 20);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 20; ++j) g(i, j) = rng.uniform(-0.3, 0.3);
  }
  const Zonotope z(Vec{0.5, -0.5}, g);
  const Zonotope r = z.reduced(6);
  EXPECT_LE(r.order(), 6u);
  // The reduced zonotope must contain the original: support dominates in
  // every direction.
  for (int trial = 0; trial < 100; ++trial) {
    const Vec l{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_GE(r.support(l), z.support(l) - 1e-12);
  }
  EXPECT_THROW((void)z.reduced(1), std::invalid_argument);  // below dimension
}

TEST(ZonotopeReach, MatchesBoxMethodOnDecoupledScalar) {
  // For a 1-D system the zonotope and box methods coincide exactly.
  models::DiscreteLti m;
  m.A = linalg::Matrix{{0.9}};
  m.B = linalg::Matrix{{1.0}};
  m.dt = 1.0;
  m.name = "scalar";
  const Box u = Box::from_bounds(Vec{-1}, Vec{1});
  const ZonotopeReach zr(m, u, 0.1);
  const ReachSystem rs(m, u, 0.1, 10);
  for (std::size_t t = 0; t <= 10; ++t) {
    const Box zb = zr.reach_box(Vec{2.0}, t);
    const Box bb = rs.reach_box(Vec{2.0}, t);
    EXPECT_NEAR(zb[0].lo, bb[0].lo, 1e-12) << "t=" << t;
    EXPECT_NEAR(zb[0].hi, bb[0].hi, 1e-12) << "t=" << t;
  }
}

TEST(ZonotopeReach, NeverLooserThanBoxMethodUpToBallRelaxation) {
  // With eps = 0 (no ball term) the zonotope hull is contained in the box
  // method's box for every plant: correlations only tighten.
  for (const char* key : {"aircraft_pitch", "series_rlc", "dc_motor"}) {
    const core::SimulatorCase scase = core::simulator_case(key);
    const ZonotopeReach zr(scase.model, scase.u_range, 0.0, 128);
    const ReachSystem rs(scase.model, scase.u_range, 0.0, 10);
    for (std::size_t t = 1; t <= 10; ++t) {
      const Box zb = zr.reach_box(scase.reference, t);
      const Box bb = rs.reach_box(scase.reference, t);
      for (std::size_t d = 0; d < zb.dim(); ++d) {
        EXPECT_LE(zb[d].hi, bb[d].hi + 1e-9) << key << " t=" << t << " d=" << d;
        EXPECT_GE(zb[d].lo, bb[d].lo - 1e-9) << key << " t=" << t << " d=" << d;
      }
    }
  }
}

TEST(ZonotopeReach, ContainsSampledTrajectories) {
  const core::SimulatorCase scase = core::simulator_case("series_rlc");
  const ZonotopeReach zr(scase.model, scase.u_range, scase.eps_reach, 64);
  sim::Rng rng(47);
  const std::size_t horizon = 10;
  for (int traj = 0; traj < 30; ++traj) {
    Vec x = scase.reference;
    for (std::size_t t = 1; t <= horizon; ++t) {
      Vec u(1);
      u[0] = rng.uniform(scase.u_range[0].lo, scase.u_range[0].hi);
      x = scase.model.step(x, u) + rng.uniform_in_ball(2, scase.eps);
      EXPECT_TRUE(zr.reach_box(scase.reference, t).contains(x))
          << "traj " << traj << " step " << t;
    }
  }
}

TEST(ZonotopeDeadline, NeverShorterThanBoxDeadlineWithoutBallTerm) {
  // Tighter reach sets can only delay the first safe-set violation.  The
  // comparison is exact only at eps = 0: with eps > 0 the zonotope method
  // relaxes the disturbance *ball* to its bounding box, which per dimension
  // can exceed the box method's eps·‖rowᵢ(A^k)‖₂ term, so neither method
  // dominates in general (bench_ablation quantifies the trade-off).
  for (const char* key : {"aircraft_pitch", "series_rlc", "dc_motor"}) {
    const core::SimulatorCase scase = core::simulator_case(key);
    const BoxBackend box_est(scase.model, scase.u_range, /*eps=*/0.0,
                             scase.safe_set, DeadlineConfig{scase.max_window});
    const ZonotopeDeadlineEstimator zono_est(scase.model, scase.u_range, /*eps=*/0.0,
                                             scase.safe_set, scase.max_window, 128);
    const std::size_t d_box = box_est.estimate(scase.reference);
    const std::size_t d_zono = zono_est.estimate(scase.reference);
    EXPECT_GE(d_zono, d_box) << key;
  }
}

TEST(ZonotopeReach, Validation) {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{1.0}};
  m.B = linalg::Matrix{{1.0}};
  m.dt = 1.0;
  m.name = "s";
  EXPECT_THROW(ZonotopeReach(m, Box::unbounded(1), 0.1), std::invalid_argument);
  EXPECT_THROW(ZonotopeReach(m, Box::from_bounds(Vec{-1}, Vec{1}), -0.1),
               std::invalid_argument);
  EXPECT_THROW(ZonotopeReach(m, Box::from_bounds(Vec{-1}, Vec{1}), 0.1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace awd::reach
