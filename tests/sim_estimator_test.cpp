// Tests for the pluggable estimation stage and its interaction with the
// detection pipeline (extension beyond the paper's full-observability
// assumption).
#include "sim/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "core/detection_system.hpp"
#include "core/metrics.hpp"
#include "models/model_bank.hpp"
#include "sim/noise.hpp"

namespace awd::sim {
namespace {

TEST(Estimator, PassthroughReturnsMeasurement) {
  PassthroughEstimator est;
  const Vec y{1.0, 2.0};
  EXPECT_EQ(est.estimate(y, Vec{}), y);
  auto copy = est.clone();
  EXPECT_EQ(copy->estimate(y, Vec{}), y);
}

TEST(Estimator, CheckedAcceptsFiniteSamples) {
  PassthroughEstimator est;
  const auto ok = est.estimate_checked(Vec{1.0, 2.0}, Vec{});
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), (Vec{1.0, 2.0}));
}

TEST(Estimator, CheckedRejectsMissingSample) {
  PassthroughEstimator est;
  const auto missing = est.estimate_checked(std::nullopt, Vec{});
  EXPECT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), core::StatusCode::kUnavailable);
}

TEST(Estimator, CheckedRejectsNonFiniteSample) {
  PassthroughEstimator est;
  const auto nan =
      est.estimate_checked(Vec{std::numeric_limits<double>::quiet_NaN()}, Vec{});
  EXPECT_FALSE(nan.is_ok());
  EXPECT_EQ(nan.status().code(), core::StatusCode::kInvalidInput);
  const auto inf =
      est.estimate_checked(Vec{std::numeric_limits<double>::infinity()}, Vec{});
  EXPECT_EQ(inf.status().code(), core::StatusCode::kInvalidInput);
}

TEST(Estimator, CheckedRejectionLeavesFilterStateUntouched) {
  const auto model = models::testbed_car();
  FilteringEstimator est(model, 1e-6, 1e-6, Vec{0.0});
  (void)est.estimate(Vec{0.01}, Vec{});
  const Vec before = est.estimate(Vec{0.011}, Vec{2.0});
  // A rejected sample must not advance the filter: feeding the same good
  // sample afterwards gives the same answer as feeding it immediately.
  FilteringEstimator twin(model, 1e-6, 1e-6, Vec{0.0});
  (void)twin.estimate(Vec{0.01}, Vec{});
  (void)twin.estimate(Vec{0.011}, Vec{2.0});
  (void)est.estimate_checked(std::nullopt, Vec{2.0});
  (void)est.estimate_checked(Vec{std::numeric_limits<double>::quiet_NaN()}, Vec{2.0});
  EXPECT_EQ(est.estimate(Vec{0.012}, Vec{2.0}), twin.estimate(Vec{0.012}, Vec{2.0}));
  (void)before;
}

TEST(Estimator, FilteringSmoothsMeasurementNoise) {
  const auto model = models::testbed_car();
  const double meas_noise = 1.3e-4;
  FilteringEstimator est(model, /*q=*/1e-12, /*r=*/meas_noise * meas_noise, Vec{0.0});

  Rng rng(3);
  double x = 0.0104;
  const Vec u{2.09};
  double err_filtered = 0.0, err_raw = 0.0;
  bool first = true;
  for (int i = 0; i < 400; ++i) {
    x = model.A(0, 0) * x + model.B(0, 0) * u[0];
    const double y = x + rng.uniform(-meas_noise, meas_noise);
    const Vec xe = est.estimate(Vec{y}, first ? Vec{} : u);
    first = false;
    if (i > 50) {
      err_filtered += std::abs(xe[0] - x);
      err_raw += std::abs(y - x);
    }
  }
  EXPECT_LT(err_filtered, 0.5 * err_raw);
}

TEST(Estimator, FilteringResetRestores) {
  const auto model = models::testbed_car();
  FilteringEstimator est(model, 1e-8, 1e-8, Vec{0.5});
  (void)est.estimate(Vec{1.0}, Vec{});
  (void)est.estimate(Vec{1.0}, Vec{0.0});
  est.reset();
  // After reset the first call re-initializes from the measurement again.
  EXPECT_DOUBLE_EQ(est.estimate(Vec{2.0}, Vec{})[0], 2.0);
}

TEST(Estimator, FilteringValidation) {
  const auto model = models::testbed_car();
  EXPECT_THROW(FilteringEstimator(model, 0.0, 1.0, Vec{0.0}), std::invalid_argument);
  EXPECT_THROW(FilteringEstimator(model, 1.0, -1.0, Vec{0.0}), std::invalid_argument);
}

TEST(Estimator, DetectionPipelineWorksWithKalmanInTheLoop) {
  // The adaptive detector must still catch a bias attack when the estimate
  // comes through a Kalman filter rather than raw measurements.
  const core::SimulatorCase scase = core::simulator_case("vehicle_turning");
  core::DetectionSystemOptions opts;
  opts.make_estimator = [&scase] {
    return std::make_unique<FilteringEstimator>(
        scase.model, /*q=*/scase.eps * scase.eps,
        /*r=*/scase.sensor_noise[0] * scase.sensor_noise[0], scase.x0);
  };
  core::DetectionSystem system(scase, core::AttackKind::kBias, 17, opts);
  const sim::Trace trace = system.run();
  const core::RunMetrics m = core::compute_metrics(
      trace, scase.attack_start, scase.attack_duration, core::Strategy::kAdaptive);
  EXPECT_FALSE(m.false_negative);
}

TEST(Estimator, FilterAbsorbsPartOfTheOnsetSpike) {
  // Threat-model subtlety: the filter partially absorbs the measurement
  // corruption, so the onset residual spike the detector sees is smaller
  // than with passthrough estimation.
  const core::SimulatorCase scase = core::simulator_case("vehicle_turning");

  core::DetectionSystem plain(scase, core::AttackKind::kBias, 23);
  core::DetectionSystemOptions opts;
  opts.make_estimator = [&scase] {
    return std::make_unique<FilteringEstimator>(scase.model, 1e-3, 1e-3, scase.x0);
  };
  core::DetectionSystem filtered(scase, core::AttackKind::kBias, 23, opts);

  const sim::Trace tp = plain.run();
  const sim::Trace tf = filtered.run();
  const double spike_plain = tp[scase.attack_start].residual[0];
  const double spike_filtered = tf[scase.attack_start].residual[0];
  EXPECT_GT(spike_plain, 0.5);  // the raw bias magnitude 0.8 (minus noise)
  EXPECT_LT(spike_filtered, spike_plain);
}

}  // namespace
}  // namespace awd::sim
