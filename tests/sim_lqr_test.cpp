// Unit tests for the discrete LQR controller.
#include "sim/lqr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "models/discretize.hpp"
#include "models/model_bank.hpp"

namespace awd::sim {
namespace {

using linalg::Matrix;

TEST(Dare, ScalarClosedForm) {
  // a = 0.9, b = 1, q = 1, r = 1: P solves P = 1 + 0.81P - 0.81P^2/(1+P).
  const DareSolution sol =
      solve_dare(Matrix{{0.9}}, Matrix{{1.0}}, Matrix{{1.0}}, Matrix{{1.0}});
  ASSERT_TRUE(sol.converged);
  const double p = sol.P(0, 0);
  const double rhs = 1.0 + 0.81 * p - 0.81 * p * p / (1.0 + p);
  EXPECT_NEAR(p, rhs, 1e-10);
  EXPECT_NEAR(sol.K(0, 0), 0.9 * p / (1.0 + p), 1e-10);
}

TEST(Dare, ShapeValidation) {
  EXPECT_THROW((void)solve_dare(Matrix(2, 3), Matrix(2, 1), Matrix(2, 2), Matrix(1, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)solve_dare(Matrix::identity(2), Matrix(3, 1), Matrix(2, 2),
                                Matrix(1, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)solve_dare(Matrix::identity(2), Matrix(2, 1), Matrix(1, 1),
                                Matrix(1, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)solve_dare(Matrix::identity(2), Matrix(2, 1), Matrix(2, 2),
                                Matrix(2, 2)),
               std::invalid_argument);
}

TEST(Lqr, StabilizesUnstablePlant) {
  // x_{k+1} = 1.2 x_k + u_k — open-loop unstable; LQR closed loop must decay.
  models::DiscreteLti sys;
  sys.A = Matrix{{1.2}};
  sys.B = Matrix{{1.0}};
  sys.dt = 0.1;
  sys.name = "unstable_scalar";
  LqrController lqr(sys, Matrix{{1.0}}, Matrix{{1.0}});
  double x = 1.0;
  for (int i = 0; i < 50; ++i) {
    const Vec u = lqr.compute(Vec{x}, Vec{0.0});
    x = 1.2 * x + u[0];
  }
  EXPECT_LT(std::abs(x), 1e-3);
}

TEST(Lqr, TracksReferenceOnAircraftPitch) {
  const models::DiscreteLti sys = models::discretize_zoh(models::aircraft_pitch(), 0.02);
  const Matrix q = Matrix::diagonal(Vec{1.0, 1.0, 50.0});
  const Matrix r = Matrix{{1.0}};
  LqrController lqr(sys, q, r);

  Vec x(3);
  const Vec ref{0.0, 0.0, 0.2};
  for (int i = 0; i < 2000; ++i) {
    const Vec u = lqr.compute(x, ref);
    x = sys.step(x, u);
  }
  // LQR regulates toward the reference; with no feedforward a small offset
  // remains, but the pitch must settle near the commanded 0.2 rad.
  EXPECT_NEAR(x[2], 0.2, 0.1);
}

TEST(Lqr, GainShape) {
  const models::DiscreteLti sys = models::discretize_zoh(models::quadrotor(), 0.1);
  LqrController lqr(sys, Matrix::identity(12), Matrix::identity(4));
  EXPECT_EQ(lqr.gain().rows(), 4u);
  EXPECT_EQ(lqr.gain().cols(), 12u);
}

TEST(Lqr, CloneBehavesIdentically) {
  models::DiscreteLti sys;
  sys.A = Matrix{{0.5}};
  sys.B = Matrix{{1.0}};
  sys.dt = 0.1;
  sys.name = "s";
  LqrController lqr(sys, Matrix{{1.0}}, Matrix{{1.0}});
  auto copy = lqr.clone();
  const Vec u1 = lqr.compute(Vec{2.0}, Vec{0.0});
  const Vec u2 = copy->compute(Vec{2.0}, Vec{0.0});
  EXPECT_DOUBLE_EQ(u1[0], u2[0]);
}

}  // namespace
}  // namespace awd::sim
