// Unit tests for the random sources.
#include "sim/noise.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::sim {
namespace {

TEST(Splitmix, DeterministicAndSpread) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Adjacent seeds should differ in many bits.
  const std::uint64_t diff = splitmix64(100) ^ splitmix64(101);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += static_cast<int>((diff >> i) & 1u);
  EXPECT_GT(bits, 16);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LE(x, 5.0);
  }
}

TEST(Rng, UniformIntRespectsRange) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.uniform_int(3, 7);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 7u);
  }
}

class BallDimTest : public ::testing::TestWithParam<std::size_t> {};

// Property: every sample stays inside the ball, for every dimension the
// paper's plants use (1..12).
TEST_P(BallDimTest, SamplesStayInBall) {
  const std::size_t n = GetParam();
  Rng rng(5 + n);
  const double radius = 0.37;
  for (int i = 0; i < 500; ++i) {
    const Vec v = rng.uniform_in_ball(n, radius);
    ASSERT_EQ(v.size(), n);
    EXPECT_LE(v.norm2(), radius + 1e-12);
  }
}

// Property: the radial CDF matches the uniform-ball law r^n — check the
// median: P(|v| <= r_med) = 0.5 with r_med = R * 0.5^{1/n}.
TEST_P(BallDimTest, RadialDistributionMedian) {
  const std::size_t n = GetParam();
  Rng rng(77 + n);
  const double radius = 1.0;
  const double r_med = std::pow(0.5, 1.0 / static_cast<double>(n));
  int below = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (rng.uniform_in_ball(n, radius).norm2() <= r_med) ++below;
  }
  // Binomial(4000, 0.5): 3 sigma ≈ 95.
  EXPECT_NEAR(below, trials / 2, 120) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Dims, BallDimTest, ::testing::Values(1, 2, 3, 4, 12));

TEST(Rng, BallZeroRadiusAndZeroDim) {
  Rng rng(6);
  EXPECT_EQ(rng.uniform_in_ball(3, 0.0).norm2(), 0.0);
  EXPECT_EQ(rng.uniform_in_ball(0, 1.0).size(), 0u);
  EXPECT_THROW((void)rng.uniform_in_ball(2, -1.0), std::invalid_argument);
}

TEST(Rng, BoxSamplesRespectPerDimensionBounds) {
  Rng rng(8);
  const Vec bound{0.5, 0.0, 2.0};
  for (int i = 0; i < 300; ++i) {
    const Vec v = rng.uniform_in_box(bound);
    EXPECT_LE(std::abs(v[0]), 0.5);
    EXPECT_EQ(v[1], 0.0);
    EXPECT_LE(std::abs(v[2]), 2.0);
  }
  EXPECT_THROW((void)rng.uniform_in_box(Vec{-0.1}), std::invalid_argument);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0.0, sumsq = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sumsq / trials, 1.0, 0.05);
}

}  // namespace
}  // namespace awd::sim
