// Unit tests for the state estimators.
#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/eig.hpp"
#include "models/discretize.hpp"
#include "models/model_bank.hpp"
#include "sim/noise.hpp"

namespace awd::sim {
namespace {

models::DiscreteLti testbed() { return models::testbed_car(); }

Matrix testbed_c() { return Matrix{{models::kTestbedCarC}}; }

TEST(Observer, DesignedGainStabilizesErrorDynamics) {
  const Matrix l = design_observer_gain(testbed(), testbed_c(), 1.0, 1.0);
  LuenbergerObserver obs(testbed(), testbed_c(), l, Vec{0.0});
  EXPECT_TRUE(linalg::is_schur_stable(obs.error_dynamics()));
}

TEST(Observer, ConvergesToTrueStateWithoutNoise) {
  const auto model = testbed();
  const Matrix c = testbed_c();
  const Matrix l = design_observer_gain(model, c, 1.0, 1e-4);
  LuenbergerObserver obs(model, c, l, Vec{0.0});  // wrong initial estimate

  double x = 0.0104;  // true internal state (4 m/s)
  const Vec u{2.0};
  for (int i = 0; i < 200; ++i) {
    x = model.A(0, 0) * x + model.B(0, 0) * u[0];
    (void)obs.update(Vec{models::kTestbedCarC * x}, u);
  }
  EXPECT_NEAR(obs.estimate()[0], x, 1e-8);
}

TEST(Observer, MultiStateConvergence) {
  // DC motor observed only through its position: the observer must
  // reconstruct speed and current.
  const auto model = models::discretize_zoh(models::dc_motor_position(), 0.1);
  Matrix c(1, 3);
  c(0, 0) = 1.0;
  const Matrix l = design_observer_gain(model, c, 1.0, 1e-3);
  LuenbergerObserver obs(model, c, l, Vec(3));
  EXPECT_TRUE(linalg::is_schur_stable(obs.error_dynamics()));

  Vec x{0.5, -0.2, 0.1};
  const Vec u{3.0};
  for (int i = 0; i < 300; ++i) {
    x = model.step(x, u);
    (void)obs.update(Vec{x[0]}, u);
  }
  for (std::size_t d = 0; d < 3; ++d) EXPECT_NEAR(obs.estimate()[d], x[d], 1e-6);
}

TEST(Observer, Validation) {
  const auto model = testbed();
  EXPECT_THROW(LuenbergerObserver(model, Matrix(1, 2), Matrix(1, 1), Vec{0.0}),
               std::invalid_argument);
  EXPECT_THROW(LuenbergerObserver(model, testbed_c(), Matrix(2, 1), Vec{0.0}),
               std::invalid_argument);
  EXPECT_THROW(LuenbergerObserver(model, testbed_c(), Matrix(1, 1), Vec{0.0, 1.0}),
               std::invalid_argument);
  LuenbergerObserver obs(model, testbed_c(), Matrix(1, 1), Vec{0.0});
  EXPECT_THROW((void)obs.update(Vec{0.0, 1.0}, Vec{0.0}), std::invalid_argument);
  EXPECT_THROW((void)obs.update(Vec{0.0}, Vec{0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs.reset(Vec{0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)design_observer_gain(model, testbed_c(), 0.0, 1.0),
               std::invalid_argument);
}

TEST(Kalman, GainShapeAndStability) {
  const auto model = models::discretize_zoh(models::series_rlc(), 0.02);
  Matrix c(1, 2);
  c(0, 0) = 1.0;  // measure only the capacitor voltage
  SteadyStateKalmanFilter kf(model, c, Matrix::identity(2) * 1e-4,
                             Matrix::identity(1) * 1e-4, Vec(2));
  EXPECT_EQ(kf.gain().rows(), 2u);
  EXPECT_EQ(kf.gain().cols(), 1u);
}

TEST(Kalman, TracksNoisyPlantBetterThanRawInversion) {
  const auto model = testbed();
  const Matrix c = testbed_c();
  const double meas_sigma = 0.05;  // m/s-scale noise on y
  SteadyStateKalmanFilter kf(model, c, Matrix::identity(1) * 1e-14,
                             Matrix::identity(1) * (meas_sigma * meas_sigma), Vec{0.0104});

  Rng rng(19);
  double x = 0.0104;
  const Vec u{2.0};
  double err_kf = 0.0, err_raw = 0.0;
  for (int i = 0; i < 500; ++i) {
    x = model.A(0, 0) * x + model.B(0, 0) * u[0];
    const double y = models::kTestbedCarC * x + rng.gaussian() * meas_sigma;
    (void)kf.update(Vec{y}, u);
    if (i > 100) {  // after convergence
      err_kf += std::abs(kf.estimate()[0] - x);
      err_raw += std::abs(y / models::kTestbedCarC - x);
    }
  }
  EXPECT_LT(err_kf, 0.3 * err_raw);  // filtering beats direct inversion
}

TEST(Kalman, Validation) {
  const auto model = testbed();
  EXPECT_THROW(SteadyStateKalmanFilter(model, testbed_c(), Matrix(2, 2), Matrix(1, 1),
                                       Vec{0.0}),
               std::invalid_argument);
  EXPECT_THROW(SteadyStateKalmanFilter(model, testbed_c(), Matrix::identity(1),
                                       Matrix(2, 2), Vec{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace awd::sim
