// Unit tests for the PID controller.
#include "sim/pid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace awd::sim {
namespace {

TEST(Pid, ProportionalOnly) {
  PidController pid = PidController::simple({2.0, 0.0, 0.0}, 0, 0.1);
  const Vec u = pid.compute(Vec{0.3}, Vec{1.0});
  EXPECT_NEAR(u[0], 2.0 * 0.7, 1e-12);
}

TEST(Pid, IntegralAccumulates) {
  PidController pid = PidController::simple({0.0, 1.0, 0.0}, 0, 0.5);
  (void)pid.compute(Vec{0.0}, Vec{1.0});  // integral = 0.5
  const Vec u = pid.compute(Vec{0.0}, Vec{1.0});  // integral = 1.0
  EXPECT_NEAR(u[0], 1.0, 1e-12);
}

TEST(Pid, DerivativeOnErrorChange) {
  PidController pid = PidController::simple({0.0, 0.0, 1.0}, 0, 0.1);
  const Vec u0 = pid.compute(Vec{0.0}, Vec{1.0});  // first step: derivative 0
  EXPECT_EQ(u0[0], 0.0);
  const Vec u1 = pid.compute(Vec{0.5}, Vec{1.0});  // error 1.0 -> 0.5
  EXPECT_NEAR(u1[0], -5.0, 1e-12);
}

TEST(Pid, DerivativeFilterSmooths) {
  PidGains gains{0.0, 0.0, 1.0, 0.5};
  PidController pid(gains, {0}, linalg::Matrix{{1.0}}, 0.1);
  (void)pid.compute(Vec{0.0}, Vec{1.0});
  const Vec u1 = pid.compute(Vec{0.5}, Vec{1.0});
  // Raw derivative -5; filtered: 0.5*0 + 0.5*(-5) = -2.5.
  EXPECT_NEAR(u1[0], -2.5, 1e-12);
}

TEST(Pid, AntiWindupCapsIntegralTerm) {
  PidGains gains{0.0, 10.0, 0.0, 0.0, 2.0};  // ki=10, |ki * I| <= 2
  PidController pid(gains, {0}, linalg::Matrix{{1.0}}, 1.0);
  Vec u;
  for (int i = 0; i < 100; ++i) u = pid.compute(Vec{0.0}, Vec{1.0});
  EXPECT_NEAR(u[0], 2.0, 1e-12);
  // Unwinds symmetrically.
  for (int i = 0; i < 100; ++i) u = pid.compute(Vec{2.0}, Vec{1.0});
  EXPECT_NEAR(u[0], -2.0 - 10.0 * 0.0 /* p term zero */, 1.0);
}

TEST(Pid, MultiChannelOutputMap) {
  // Two tracked dims routed to three inputs.
  linalg::Matrix map{{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  PidController pid({1.0, 0.0, 0.0}, {0, 2}, map, 0.1);
  const Vec u = pid.compute(Vec{0.0, 9.0, 0.0}, Vec{1.0, 0.0, 2.0});
  // channel errors: e0 = 1, e1 = 2 -> p = [1, 2].
  EXPECT_NEAR(u[0], 1.0, 1e-12);
  EXPECT_NEAR(u[1], 4.0, 1e-12);
  EXPECT_NEAR(u[2], 3.0, 1e-12);
}

TEST(Pid, ResetClearsState) {
  PidController pid = PidController::simple({0.0, 1.0, 1.0}, 0, 1.0);
  (void)pid.compute(Vec{0.0}, Vec{1.0});
  (void)pid.compute(Vec{0.5}, Vec{1.0});
  pid.reset();
  const Vec u = pid.compute(Vec{0.0}, Vec{1.0});
  // After reset: integral = 1.0 (one step), derivative = 0 (first step).
  EXPECT_NEAR(u[0], 1.0, 1e-12);
}

TEST(Pid, CloneIsIndependent) {
  PidController pid = PidController::simple({0.0, 1.0, 0.0}, 0, 1.0);
  (void)pid.compute(Vec{0.0}, Vec{1.0});
  auto copy = pid.clone();
  (void)pid.compute(Vec{0.0}, Vec{1.0});  // original integral: 2
  const Vec u_copy = copy->compute(Vec{0.0}, Vec{1.0});  // clone integral: 2
  const Vec u_orig = pid.compute(Vec{0.0}, Vec{1.0});    // original: 3
  EXPECT_NEAR(u_copy[0], 2.0, 1e-12);
  EXPECT_NEAR(u_orig[0], 3.0, 1e-12);
}

TEST(Pid, ValidationErrors) {
  EXPECT_THROW(PidController({1, 0, 0}, {0}, linalg::Matrix{{1.0}}, 0.0),
               std::invalid_argument);  // dt
  EXPECT_THROW(PidController({1, 0, 0}, {}, linalg::Matrix(1, 0), 0.1),
               std::invalid_argument);  // no channels
  EXPECT_THROW(PidController({1, 0, 0}, {0, 1}, linalg::Matrix{{1.0}}, 0.1),
               std::invalid_argument);  // map columns mismatch
  EXPECT_THROW(PidController({1, 0, 0, 1.5}, {0}, linalg::Matrix{{1.0}}, 0.1),
               std::invalid_argument);  // filter out of range
}

TEST(Pid, TrackedDimOutOfRangeThrowsAtCompute) {
  PidController pid = PidController::simple({1, 0, 0}, 5, 0.1);
  EXPECT_THROW((void)pid.compute(Vec{0.0}, Vec{1.0}), std::invalid_argument);
}

TEST(Pid, ClosedLoopRegulatesScalarPlant) {
  // x_{k+1} = x_k + 0.1 u: PI control must drive x to the reference.
  PidController pid = PidController::simple({2.0, 1.0, 0.0}, 0, 0.1);
  double x = 0.0;
  for (int i = 0; i < 300; ++i) {
    const Vec u = pid.compute(Vec{x}, Vec{1.0});
    x += 0.1 * u[0];
  }
  EXPECT_NEAR(x, 1.0, 1e-3);
}

}  // namespace
}  // namespace awd::sim
