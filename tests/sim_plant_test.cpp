// Unit tests for the ground-truth plant.
#include "sim/plant.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/model_bank.hpp"

namespace awd::sim {
namespace {

models::DiscreteLti scalar_model(double a, double b) {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{a}};
  m.B = linalg::Matrix{{b}};
  m.dt = 0.1;
  m.name = "scalar";
  return m;
}

TEST(Plant, NoiseFreeStepMatchesModel) {
  Plant plant(scalar_model(0.5, 2.0), reach::Box::from_bounds(Vec{-10}, Vec{10}),
              /*eps=*/0.0, Vec{1.0});
  Rng rng(1);
  (void)plant.step(Vec{3.0}, rng);
  EXPECT_DOUBLE_EQ(plant.state()[0], 0.5 * 1.0 + 2.0 * 3.0);
}

TEST(Plant, SaturatesControlAndReportsApplied) {
  Plant plant(scalar_model(1.0, 1.0), reach::Box::from_bounds(Vec{-2}, Vec{2}), 0.0,
              Vec{0.0});
  Rng rng(1);
  const Vec applied = plant.step(Vec{100.0}, rng);
  EXPECT_DOUBLE_EQ(applied[0], 2.0);
  EXPECT_DOUBLE_EQ(plant.state()[0], 2.0);
  const Vec applied_neg = plant.step(Vec{-100.0}, rng);
  EXPECT_DOUBLE_EQ(applied_neg[0], -2.0);
}

TEST(Plant, ProcessNoiseBoundedByEps) {
  const double eps = 0.05;
  Plant plant(scalar_model(1.0, 0.0), reach::Box::from_bounds(Vec{-1}, Vec{1}), eps,
              Vec{0.0});
  Rng rng(7);
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    (void)plant.step(Vec{0.0}, rng);
    // With A = 1, B weight 0: |x_{k+1} - x_k| = |v_k| <= eps.
    EXPECT_LE(std::abs(plant.state()[0] - prev), eps + 1e-12);
    prev = plant.state()[0];
  }
}

TEST(Plant, ResetRestoresState) {
  Plant plant(scalar_model(0.9, 1.0), reach::Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
              Vec{5.0});
  Rng rng(1);
  (void)plant.step(Vec{0.5}, rng);
  plant.reset(Vec{5.0});
  EXPECT_DOUBLE_EQ(plant.state()[0], 5.0);
  EXPECT_THROW(plant.reset(Vec{1.0, 2.0}), std::invalid_argument);
}

TEST(Plant, ConstructionValidation) {
  const auto model = scalar_model(1.0, 1.0);
  const auto box1 = reach::Box::from_bounds(Vec{-1}, Vec{1});
  EXPECT_THROW(Plant(model, reach::Box::unbounded(2), 0.0, Vec{0.0}),
               std::invalid_argument);  // u-range dim
  EXPECT_THROW(Plant(model, box1, -0.1, Vec{0.0}), std::invalid_argument);  // eps
  EXPECT_THROW(Plant(model, box1, 0.0, Vec{0.0, 0.0}), std::invalid_argument);  // x0 dim
}

TEST(Plant, StepInputDimChecked) {
  Plant plant(scalar_model(1.0, 1.0), reach::Box::from_bounds(Vec{-1}, Vec{1}), 0.0,
              Vec{0.0});
  Rng rng(1);
  EXPECT_THROW((void)plant.step(Vec{1.0, 2.0}, rng), std::invalid_argument);
}

TEST(Plant, AccessorsExposeConfiguration) {
  Plant plant(models::testbed_car(), reach::Box::from_bounds(Vec{0.0}, Vec{7.7}), 1e-3,
              Vec{0.01});
  EXPECT_EQ(plant.model().name, "testbed_car");
  EXPECT_DOUBLE_EQ(plant.uncertainty_bound(), 1e-3);
  EXPECT_DOUBLE_EQ(plant.input_range()[0].hi, 7.7);
}

}  // namespace
}  // namespace awd::sim
