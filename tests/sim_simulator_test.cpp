// Unit tests for the closed-loop simulator.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/pid.hpp"

namespace awd::sim {
namespace {

models::DiscreteLti scalar_model() {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{0.9}};
  m.B = linalg::Matrix{{0.5}};
  m.dt = 0.1;
  m.name = "scalar";
  return m;
}

Simulator make_sim(SimulatorOptions opts,
                   std::shared_ptr<const attack::Attack> atk =
                       std::make_shared<attack::NoAttack>(),
                   double eps = 0.0) {
  Plant plant(scalar_model(), reach::Box::from_bounds(Vec{-5}, Vec{5}), eps, opts.x0);
  auto pid = std::make_unique<PidController>(PidGains{1.0, 0.5, 0.0},
                                             std::vector<std::size_t>{0},
                                             linalg::Matrix{{1.0}}, 0.1);
  return Simulator(std::move(plant), std::move(pid), std::move(atk), std::move(opts));
}

SimulatorOptions base_opts() {
  SimulatorOptions o;
  o.x0 = Vec{0.0};
  o.reference = Vec{1.0};
  o.sensor_noise = Vec{0.0};
  o.seed = 1;
  return o;
}

TEST(Simulator, FirstStepResidualIsZero) {
  Simulator sim = make_sim(base_opts());
  const StepRecord rec = sim.step();
  EXPECT_EQ(rec.t, 0u);
  EXPECT_EQ(rec.residual[0], 0.0);
  EXPECT_EQ(rec.predicted[0], rec.estimate[0]);
}

TEST(Simulator, NoiseFreeResidualStaysZero) {
  Simulator sim = make_sim(base_opts());
  for (int i = 0; i < 50; ++i) {
    const StepRecord rec = sim.step();
    EXPECT_NEAR(rec.residual[0], 0.0, 1e-12) << "step " << rec.t;
  }
}

TEST(Simulator, ClosedLoopTracksReference) {
  Simulator sim = make_sim(base_opts());
  const Trace trace = sim.run(300);
  EXPECT_NEAR(trace.back().true_state[0], 1.0, 1e-2);
}

TEST(Simulator, ResidualEqualsPredictionError) {
  SimulatorOptions o = base_opts();
  o.sensor_noise = Vec{0.01};
  Simulator sim = make_sim(o, std::make_shared<attack::NoAttack>(), 0.02);
  StepRecord prev = sim.step();
  for (int i = 0; i < 30; ++i) {
    const StepRecord rec = sim.step();
    const double expected =
        std::abs(0.9 * prev.estimate[0] + 0.5 * prev.control[0] - rec.estimate[0]);
    EXPECT_NEAR(rec.residual[0], expected, 1e-12);
    prev = rec;
  }
}

TEST(Simulator, BiasAttackShiftsEstimateNotTruth) {
  auto attack = std::make_shared<attack::BiasAttack>(attack::AttackWindow{5, 100},
                                                     Vec{0.7});
  Simulator sim = make_sim(base_opts(), attack);
  for (int i = 0; i < 5; ++i) (void)sim.step();
  const StepRecord rec = sim.step();
  EXPECT_TRUE(rec.attack_active);
  EXPECT_NEAR(rec.estimate[0] - rec.true_state[0], 0.7, 1e-12);
  // Residual spikes by the bias at onset.
  EXPECT_NEAR(rec.residual[0], 0.7, 1e-12);
}

TEST(Simulator, SameSeedReproducesExactly) {
  SimulatorOptions o = base_opts();
  o.sensor_noise = Vec{0.02};
  Simulator a = make_sim(o, std::make_shared<attack::NoAttack>(), 0.05);
  Simulator b = make_sim(o, std::make_shared<attack::NoAttack>(), 0.05);
  for (int i = 0; i < 50; ++i) {
    const StepRecord ra = a.step();
    const StepRecord rb = b.step();
    EXPECT_EQ(ra.true_state[0], rb.true_state[0]);
    EXPECT_EQ(ra.estimate[0], rb.estimate[0]);
  }
}

TEST(Simulator, CommandedVersusAppliedPrediction) {
  // Force saturation: reference far away so the PI controller commands > 5.
  SimulatorOptions o = base_opts();
  o.reference = Vec{100.0};
  o.predict_with_commanded = false;
  Simulator applied = make_sim(o);
  o.predict_with_commanded = true;
  Simulator commanded = make_sim(o);

  double max_res_applied = 0.0, max_res_commanded = 0.0;
  for (int i = 0; i < 20; ++i) {
    max_res_applied = std::max(max_res_applied, applied.step().residual[0]);
    max_res_commanded = std::max(max_res_commanded, commanded.step().residual[0]);
  }
  // Applied-input prediction is exact (no noise); commanded-input prediction
  // sees the saturation gap as residual.
  EXPECT_NEAR(max_res_applied, 0.0, 1e-12);
  EXPECT_GT(max_res_commanded, 0.1);
}

TEST(Simulator, ReferenceScheduleSwitchesSetpoint) {
  SimulatorOptions o = base_opts();
  o.reference_schedule = {{10, Vec{2.0}}};
  Simulator sim = make_sim(o);
  const Trace trace = sim.run(400);
  EXPECT_NEAR(trace.back().true_state[0], 2.0, 2e-2);
}

TEST(Simulator, ReferenceSinusoidMovesPlant) {
  SimulatorOptions o = base_opts();
  o.reference_sinusoids = {{0, 0.5, 40.0}};
  Simulator sim = make_sim(o);
  const Trace trace = sim.run(400);
  double lo = 1e9, hi = -1e9;
  for (std::size_t t = 200; t < trace.size(); ++t) {
    lo = std::min(lo, trace[t].true_state[0]);
    hi = std::max(hi, trace[t].true_state[0]);
  }
  EXPECT_GT(hi - lo, 0.4);  // the plant actually follows the oscillation
}

TEST(Simulator, Validation) {
  SimulatorOptions o = base_opts();
  o.x0 = Vec{0.0, 0.0};
  EXPECT_THROW(make_sim(o), std::invalid_argument);

  o = base_opts();
  o.reference_schedule = {{5, Vec{1.0, 2.0}}};
  EXPECT_THROW(make_sim(o), std::invalid_argument);

  o = base_opts();
  o.reference_schedule = {{10, Vec{1.0}}, {5, Vec{2.0}}};  // unsorted
  EXPECT_THROW(make_sim(o), std::invalid_argument);

  o = base_opts();
  o.reference_sinusoids = {{3, 0.1, 10.0}};  // dim out of range
  EXPECT_THROW(make_sim(o), std::invalid_argument);

  o = base_opts();
  o.reference_sinusoids = {{0, 0.1, 0.0}};  // bad period
  EXPECT_THROW(make_sim(o), std::invalid_argument);
}

TEST(Simulator, RunProducesContiguousTrace) {
  Simulator sim = make_sim(base_opts());
  const Trace trace = sim.run(25);
  ASSERT_EQ(trace.size(), 25u);
  for (std::size_t i = 0; i < trace.size(); ++i) EXPECT_EQ(trace[i].t, i);
  EXPECT_EQ(sim.now(), 25u);
}

}  // namespace
}  // namespace awd::sim
