// Unit tests for Trace queries.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace awd::sim {
namespace {

Trace make_trace(std::initializer_list<int> adaptive_alarms,
                 std::initializer_list<int> fixed_alarms,
                 std::initializer_list<int> unsafe_steps, std::size_t n = 10) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    StepRecord r;
    r.t = i;
    t.push(std::move(r));
  }
  Trace out;
  for (std::size_t i = 0; i < n; ++i) {
    StepRecord r;
    r.t = i;
    for (int a : adaptive_alarms) {
      if (static_cast<std::size_t>(a) == i) r.adaptive_alarm = true;
    }
    for (int f : fixed_alarms) {
      if (static_cast<std::size_t>(f) == i) r.fixed_alarm = true;
    }
    for (int u : unsafe_steps) {
      if (static_cast<std::size_t>(u) == i) r.unsafe = true;
    }
    out.push(std::move(r));
  }
  return out;
}

TEST(Trace, FirstAlarmAtOrAfter) {
  const Trace t = make_trace({3, 7}, {5}, {});
  EXPECT_EQ(t.first_alarm_at_or_after(0, true).value(), 3u);
  EXPECT_EQ(t.first_alarm_at_or_after(4, true).value(), 7u);
  EXPECT_EQ(t.first_alarm_at_or_after(0, false).value(), 5u);
  EXPECT_FALSE(t.first_alarm_at_or_after(8, true).has_value());
}

TEST(Trace, AlarmCountAndRate) {
  const Trace t = make_trace({2, 3, 4}, {}, {});
  EXPECT_EQ(t.alarm_count(0, 10, true), 3u);
  EXPECT_EQ(t.alarm_count(3, 10, true), 2u);
  EXPECT_EQ(t.alarm_count(0, 10, false), 0u);
  EXPECT_DOUBLE_EQ(t.alarm_rate(0, 10, true), 0.3);
  EXPECT_DOUBLE_EQ(t.alarm_rate(5, 5, true), 0.0);  // empty range
  // Out-of-range hi clamps to the trace length.
  EXPECT_EQ(t.alarm_count(0, 100, true), 3u);
}

TEST(Trace, FirstUnsafe) {
  EXPECT_EQ(make_trace({}, {}, {6}).first_unsafe().value(), 6u);
  EXPECT_FALSE(make_trace({}, {}, {}).first_unsafe().has_value());
}

TEST(Trace, BasicAccessors) {
  Trace t;
  EXPECT_TRUE(t.empty());
  StepRecord r;
  r.t = 0;
  t.push(std::move(r));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.back().t, 0u);
  std::size_t visited = 0;
  for (const StepRecord& rec : t) {
    (void)rec;
    ++visited;
  }
  EXPECT_EQ(visited, 1u);
}

}  // namespace
}  // namespace awd::sim
