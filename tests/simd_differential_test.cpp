// Scalar <-> SIMD differential at the system level (DESIGN.md §14).  The
// vector kernels promise an ULP bound of ZERO: every detector artifact —
// step records, adaptive evaluation counts, StreamEngine checkpoint images —
// must be bitwise identical whether the dispatch serves the scalar set or
// the best runtime SIMD set.  On hosts whose best set IS scalar these tests
// degenerate to replay determinism, which is exactly what the simd-off CI
// leg should observe.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/detection_system.hpp"
#include "linalg/kernels.hpp"
#include "serve/forensics.hpp"
#include "serve/stream_engine.hpp"
#include "sim/trace.hpp"

namespace {

namespace kn = awd::linalg::kernels;
using awd::core::AttackKind;
using awd::core::DetectionSystem;
using awd::core::DetectionSystemOptions;
using awd::core::SimulatorCase;
using awd::core::simulator_case;

/// Force `level` for the lifetime of the guard, restoring on destruction.
class LevelGuard {
 public:
  explicit LevelGuard(kn::SimdLevel level) : prev_(kn::active_level()) {
    (void)kn::force_level(level);
  }
  ~LevelGuard() { (void)kn::force_level(prev_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  kn::SimdLevel prev_;
};

void expect_records_equal(const awd::sim::StepRecord& a, const awd::sim::StepRecord& b,
                          const std::string& what) {
  EXPECT_EQ(a.t, b.t) << what;
  EXPECT_EQ(a.true_state, b.true_state) << what;
  EXPECT_EQ(a.estimate, b.estimate) << what;
  EXPECT_EQ(a.residual, b.residual) << what;
  EXPECT_EQ(a.control, b.control) << what;
  EXPECT_EQ(a.deadline, b.deadline) << what;
  EXPECT_EQ(a.window, b.window) << what;
  EXPECT_EQ(a.adaptive_alarm, b.adaptive_alarm) << what;
  EXPECT_EQ(a.fixed_alarm, b.fixed_alarm) << what;
  EXPECT_EQ(a.attack_active, b.attack_active) << what;
  EXPECT_EQ(a.unsafe, b.unsafe) << what;
}

/// Cap a case's run length, re-fitting the attack window (and a replay
/// attack's recorded segment, which must end before the attack starts).
void cap_case(SimulatorCase& scase, std::size_t max_steps) {
  scase.steps = std::min(scase.steps, max_steps);
  if (scase.attack_start + scase.attack_duration > scase.steps) {
    scase.attack_start = std::min(scase.attack_start, scase.steps / 2);
    scase.attack_duration = std::min(scase.attack_duration, scase.steps - scase.attack_start);
  }
  if (scase.attack_start > 0) {
    scase.replay_record_start = std::min(scase.replay_record_start, scase.attack_start - 1);
  }
}

/// Build and run one pipeline entirely under `level` (construction caches the
/// deadline terms, so the level must cover the constructor too).
awd::sim::Trace run_pipeline(kn::SimdLevel level, const SimulatorCase& scase,
                             AttackKind attack, std::uint64_t seed) {
  LevelGuard guard(level);
  DetectionSystem system(scase, attack, seed, DetectionSystemOptions{});
  return system.run();
}

constexpr const char* kPlants[] = {"aircraft_pitch", "vehicle_turning", "series_rlc",
                                   "dc_motor", "quadrotor"};
constexpr AttackKind kAttacks[] = {AttackKind::kNone, AttackKind::kBias,
                                   AttackKind::kDelay, AttackKind::kReplay,
                                   AttackKind::kFreeze};

// Every preset plant (state dims 1..12, so every gemv/support-walk remainder
// shape), every attack kind: scalar and best-SIMD traces are bitwise equal.
TEST(SimdDifferential, PipelineTraceBitIdentical) {
  const kn::SimdLevel best = kn::runtime_level();
  for (const char* key : kPlants) {
    SimulatorCase scase = simulator_case(key);
    cap_case(scase, 200);
    for (std::size_t a = 0; a < 5; ++a) {
      const AttackKind attack = kAttacks[a];
      const std::uint64_t seed = 11 + a;
      const awd::sim::Trace scalar = run_pipeline(kn::SimdLevel::kScalar, scase,
                                                  attack, seed);
      const awd::sim::Trace simd = run_pipeline(best, scase, attack, seed);
      ASSERT_EQ(scalar.size(), simd.size()) << key << " attack " << a;
      for (std::size_t t = 0; t < scalar.size(); ++t) {
        expect_records_equal(scalar[t], simd[t],
                             std::string(key) + " attack " + std::to_string(a) +
                                 " t=" + std::to_string(t));
      }
    }
  }
}

/// Submit a small mixed-plant batch; returns ids in submission order.
std::vector<awd::serve::StreamId> submit_batch(awd::serve::StreamEngine& engine) {
  std::vector<awd::serve::StreamId> ids;
  for (const char* key : {"aircraft_pitch", "series_rlc", "dc_motor"}) {
    const SimulatorCase scase = simulator_case(key);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      awd::core::Result<awd::serve::StreamId> id = engine.submit(
          {.scase = scase, .attack = kAttacks[seed % 5], .seed = seed});
      EXPECT_TRUE(id.is_ok()) << id.status().message();
      ids.push_back(id.value());
    }
  }
  return ids;
}

// A StreamEngine checkpoint image taken mid-run must be byte-identical
// regardless of which kernel set produced it — the serialized state is
// layout- and instruction-set-independent.
TEST(SimdDifferential, EngineCheckpointBytesLevelIndependent) {
  const kn::SimdLevel best = kn::runtime_level();

  std::vector<std::uint8_t> scalar_image;
  {
    LevelGuard guard(kn::SimdLevel::kScalar);
    awd::serve::StreamEngine engine({.threads = 2, .max_streams = 16});
    submit_batch(engine);
    for (int k = 0; k < 41; ++k) engine.step_all();
    awd::core::Result<std::vector<std::uint8_t>> snap = engine.checkpoint();
    ASSERT_TRUE(snap.is_ok()) << snap.status().message();
    scalar_image = snap.value();
  }

  std::vector<std::uint8_t> simd_image;
  {
    LevelGuard guard(best);
    awd::serve::StreamEngine engine({.threads = 2, .max_streams = 16});
    submit_batch(engine);
    for (int k = 0; k < 41; ++k) engine.step_all();
    awd::core::Result<std::vector<std::uint8_t>> snap = engine.checkpoint();
    ASSERT_TRUE(snap.is_ok()) << snap.status().message();
    simd_image = snap.value();
  }

  EXPECT_EQ(scalar_image, simd_image)
      << "checkpoint images diverged between scalar and "
      << kn::level_name(best) << " kernel sets";
}

// Cross-level resume: an image produced under the scalar set restores under
// the SIMD set (and vice versa) and finishes bitwise equal to an
// uninterrupted scalar run — checkpoints migrate freely between AWD_SIMD
// build flavors and hosts.
TEST(SimdDifferential, CrossLevelRestoreContinuesBitIdentical) {
  const kn::SimdLevel best = kn::runtime_level();

  // Uninterrupted scalar reference.
  std::vector<awd::serve::StreamId> ids;
  std::vector<awd::serve::StreamResult> want;
  {
    LevelGuard guard(kn::SimdLevel::kScalar);
    awd::serve::StreamEngine reference({.threads = 2, .max_streams = 16});
    ids = submit_batch(reference);
    reference.run_to_completion();
    for (awd::serve::StreamId id : ids) {
      awd::core::Result<awd::serve::StreamResult> r = reference.drain(id);
      ASSERT_TRUE(r.is_ok());
      want.push_back(r.value());
    }
  }

  struct Direction {
    kn::SimdLevel produce;
    kn::SimdLevel resume;
    const char* what;
  };
  const Direction directions[] = {
      {kn::SimdLevel::kScalar, best, "scalar image resumed under SIMD"},
      {best, kn::SimdLevel::kScalar, "SIMD image resumed under scalar"},
  };
  for (const Direction& dir : directions) {
    std::vector<std::uint8_t> image;
    {
      LevelGuard guard(dir.produce);
      awd::serve::StreamEngine interrupted({.threads = 2, .max_streams = 16});
      ASSERT_EQ(submit_batch(interrupted), ids) << dir.what;
      for (int k = 0; k < 33; ++k) interrupted.step_all();
      awd::core::Result<std::vector<std::uint8_t>> snap = interrupted.checkpoint();
      ASSERT_TRUE(snap.is_ok()) << dir.what << ": " << snap.status().message();
      image = snap.value();
    }
    LevelGuard guard(dir.resume);
    awd::serve::StreamEngine restored({.threads = 2, .max_streams = 16});
    ASSERT_TRUE(restored.restore(image).is_ok()) << dir.what;
    restored.run_to_completion();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      awd::core::Result<awd::serve::StreamResult> r = restored.drain(ids[i]);
      ASSERT_TRUE(r.is_ok()) << dir.what << " stream " << ids[i];
      const awd::serve::StreamResult& got = r.value();
      EXPECT_EQ(got.id, want[i].id) << dir.what;
      EXPECT_EQ(got.steps, want[i].steps) << dir.what;
      EXPECT_EQ(got.final_health, want[i].final_health) << dir.what;
      EXPECT_EQ(got.adaptive_evaluations, want[i].adaptive_evaluations) << dir.what;
      EXPECT_EQ(got.adaptive.fp_rate, want[i].adaptive.fp_rate) << dir.what;
      EXPECT_EQ(got.adaptive.detection_delay, want[i].adaptive.detection_delay)
          << dir.what;
      EXPECT_EQ(got.fixed.fp_rate, want[i].fixed.fp_rate) << dir.what;
      EXPECT_EQ(got.fixed.detection_delay, want[i].fixed.detection_delay) << dir.what;
    }
  }
}

/// Run an attacked stream under `level` and return its forensic dump bytes
/// (manual dump after `steps` engine steps; single-stream, single-shard).
std::vector<std::uint8_t> dump_under_level(kn::SimdLevel level, int steps) {
  LevelGuard guard(level);
  awd::serve::StreamEngine engine({.threads = 1, .flight_recorder_depth = 256});
  SimulatorCase scase = simulator_case("aircraft_pitch");
  cap_case(scase, 200);
  awd::core::Result<awd::serve::StreamId> id =
      engine.submit({.scase = scase, .attack = AttackKind::kBias, .seed = 17});
  EXPECT_TRUE(id.is_ok()) << id.status().message();
  for (int k = 0; k < steps; ++k) engine.step_all();
  awd::core::Result<std::vector<std::uint8_t>> image = engine.dump_stream(id.value());
  EXPECT_TRUE(image.is_ok()) << image.status().message();
  return image.is_ok() ? image.value() : std::vector<std::uint8_t>{};
}

// A forensic dump's captured frames are kernel-set-independent, and a dump
// taken under one level must verify — bit-for-bit — when replayed under the
// other.  This is the §15 acceptance cross: capture scalar / replay SIMD and
// capture SIMD / replay scalar both reproduce the alarm step and the
// detector statistic exactly.
TEST(SimdDifferential, ForensicDumpReplaysAcrossLevels) {
  const kn::SimdLevel best = kn::runtime_level();
  const int kSteps = 170;  // past the bias onset at t=100 (capped case)

  const std::vector<std::uint8_t> scalar_image =
      dump_under_level(kn::SimdLevel::kScalar, kSteps);
  const std::vector<std::uint8_t> simd_image = dump_under_level(best, kSteps);
  ASSERT_FALSE(scalar_image.empty());
  ASSERT_FALSE(simd_image.empty());

  awd::core::Result<awd::serve::ForensicsDump> scalar_dump =
      awd::serve::decode_dump(scalar_image);
  awd::core::Result<awd::serve::ForensicsDump> simd_dump =
      awd::serve::decode_dump(simd_image);
  ASSERT_TRUE(scalar_dump.is_ok()) << scalar_dump.status().message();
  ASSERT_TRUE(simd_dump.is_ok()) << simd_dump.status().message();

  // The captured frame windows are bitwise equal across kernel sets.
  ASSERT_EQ(scalar_dump.value().frames.size(), simd_dump.value().frames.size());
  for (std::size_t i = 0; i < scalar_dump.value().frames.size(); ++i) {
    EXPECT_TRUE(awd::obs::frames_bit_identical(scalar_dump.value().frames[i],
                                               simd_dump.value().frames[i]))
        << "frame " << i << " diverged between scalar and " << kn::level_name(best);
  }

  // Cross replay: each image verifies under the *other* kernel set.
  struct Direction {
    const awd::serve::ForensicsDump* dump;
    kn::SimdLevel replay_level;
    const char* what;
  };
  const Direction directions[] = {
      {&scalar_dump.value(), best, "scalar dump replayed under SIMD"},
      {&simd_dump.value(), kn::SimdLevel::kScalar, "SIMD dump replayed under scalar"},
  };
  for (const Direction& dir : directions) {
    LevelGuard guard(dir.replay_level);
    awd::core::Result<awd::serve::ReplayReport> replayed =
        awd::serve::replay_dump(*dir.dump);
    ASSERT_TRUE(replayed.is_ok()) << dir.what << ": " << replayed.status().message();
    EXPECT_TRUE(replayed.value().frames_identical)
        << dir.what << ": " << replayed.value().mismatch;
    EXPECT_TRUE(replayed.value().trigger_reproduced) << dir.what;
    EXPECT_EQ(replayed.value().steps_replayed, static_cast<std::size_t>(kSteps))
        << dir.what;
  }
}

}  // namespace
