// Tune-tier tests for the detector-aware adversarial attacks: the ISSUE
// acceptance gate (a stealthy ramp against a tuned detector stays
// undetected for at least the estimated deadline horizon at onset) plus the
// edge cases — zero-duration windows, attacks starting at step 0,
// single-sensor plants under every adversarial kind, and window means that
// sit exactly on the threshold boundary.
#include "attack/adversarial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/config.hpp"
#include "core/detection_system.hpp"
#include "detect/logger.hpp"
#include "detect/window_detector.hpp"
#include "tune/tuner.hpp"

namespace awd {
namespace {

using attack::AttackWindow;
using linalg::Vec;

// --- ISSUE acceptance: stealthy ramp vs the tuned detector -----------------

// Tune aircraft_pitch to a low FAR, then launch a margin-0.5 stealthy ramp
// against the tuned thresholds.  Any alarm attributable to the attack (one
// the clean twin run does not also raise) must come at least the estimated
// deadline horizon after onset — the ramp buys the attacker that window.
TEST(StealthyRampVsTunedDetector, UndetectedThroughDeadlineHorizon) {
  const core::SimulatorCase base = core::simulator_case("aircraft_pitch");
  tune::TuneOptions topt;
  topt.target_far = 0.01;
  topt.trials = 8;
  topt.threads = 3;
  const core::Result<tune::TuneReport> res = tune::tune_detector(base, topt);
  ASSERT_TRUE(res.is_ok()) << res.status().message();

  core::SimulatorCase tuned = res.value().tuned;
  tuned.stealth_margin = 0.5;
  tuned.stealth_horizon = 0;  // track w_m
  ASSERT_TRUE(tuned.check().is_ok());

  const std::uint64_t seed = 0x5eed17;
  core::DetectionSystem attacked(tuned, core::AttackKind::kStealthyRamp, seed, {});
  core::DetectionSystem clean(tuned, core::AttackKind::kNone, seed, {});

  std::size_t deadline_at_onset = 0;
  std::size_t first_attack_alarm = std::numeric_limits<std::size_t>::max();
  for (std::size_t t = 0; t < tuned.steps; ++t) {
    const sim::StepRecord ra = attacked.step();
    const sim::StepRecord rc = clean.step();
    if (t + 1 == tuned.attack_start) deadline_at_onset = ra.deadline;
    const bool in_window =
        t >= tuned.attack_start && t < tuned.attack_start + tuned.attack_duration;
    if (in_window && ra.adaptive_alarm && !rc.adaptive_alarm &&
        first_attack_alarm == std::numeric_limits<std::size_t>::max()) {
      first_attack_alarm = t;
    }
  }
  ASSERT_GT(deadline_at_onset, 0u);
  if (first_attack_alarm != std::numeric_limits<std::size_t>::max()) {
    EXPECT_GE(first_attack_alarm - tuned.attack_start, deadline_at_onset)
        << "stealthy ramp was flagged " << first_attack_alarm - tuned.attack_start
        << " steps after onset, inside the " << deadline_at_onset
        << "-step deadline horizon";
  }
}

// --- Edge case: zero-duration windows throw for every adversarial kind -----

TEST(AdversarialEdge, ZeroDurationThrows) {
  const Vec tau{0.5};
  EXPECT_THROW(attack::StealthyRampAttack({10, 0}, tau, 0.5, 8), std::invalid_argument);
  EXPECT_THROW(attack::JitteredReplayAttack({10, 0}, 2, 1, 7), std::invalid_argument);
  EXPECT_THROW(attack::CoordinatedBiasAttack({10, 0}, Vec{1.0}, 1.0, 4),
               std::invalid_argument);
  auto inner = std::make_shared<attack::BiasAttack>(AttackWindow{10, 5}, Vec{0.1});
  EXPECT_THROW(attack::IntermittentAttack({10, 0}, inner, 4, 2), std::invalid_argument);
}

TEST(AdversarialEdge, ConstructorBoundsAreTyped) {
  const Vec tau{0.5};
  // Margin exactly at the threshold boundary (1.0) is rejected: the ramp
  // must end strictly under tau, not on it.
  EXPECT_THROW(attack::StealthyRampAttack({10, 5}, tau, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(attack::StealthyRampAttack({10, 5}, tau, 0.0, 8), std::invalid_argument);
  EXPECT_THROW(attack::StealthyRampAttack({10, 5}, tau, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(attack::StealthyRampAttack({10, 5}, Vec{-0.5}, 0.5, 8),
               std::invalid_argument);
  // Jitter band reaching before measurement 0, or overlapping the window.
  EXPECT_THROW(attack::JitteredReplayAttack({10, 5}, 1, 2, 7), std::invalid_argument);
  EXPECT_THROW(attack::JitteredReplayAttack({10, 9}, 2, 1, 7), std::invalid_argument);
  // Degenerate coordination / duty cycles.
  EXPECT_THROW(attack::CoordinatedBiasAttack({10, 5}, Vec{0.0}, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(attack::CoordinatedBiasAttack({10, 5}, Vec{1.0}, 0.0, 4),
               std::invalid_argument);
  auto inner = std::make_shared<attack::BiasAttack>(AttackWindow{10, 5}, Vec{0.1});
  EXPECT_THROW(attack::IntermittentAttack({10, 5}, inner, 1, 1), std::invalid_argument);
  EXPECT_THROW(attack::IntermittentAttack({10, 5}, inner, 4, 4), std::invalid_argument);
  EXPECT_THROW(attack::IntermittentAttack({10, 5}, inner, 4, 0), std::invalid_argument);
  EXPECT_THROW(attack::IntermittentAttack({10, 5}, nullptr, 4, 2), std::invalid_argument);
}

// --- Edge case: attack starting at step 0 ----------------------------------

TEST(AdversarialEdge, AttackStartingAtStepZeroRunsCleanly) {
  for (const core::AttackKind kind :
       {core::AttackKind::kStealthyRamp, core::AttackKind::kCoordinatedBias,
        core::AttackKind::kIntermittentBias}) {
    core::SimulatorCase c = core::simulator_case("vehicle_turning");
    c.steps = 80;
    c.attack_start = 0;
    c.attack_duration = 40;
    ASSERT_TRUE(c.check().is_ok());
    core::DetectionSystem system(c, kind, 0xa0, {});
    for (std::size_t t = 0; t < c.steps; ++t) {
      const sim::StepRecord rec = system.step();
      ASSERT_TRUE(rec.residual.is_finite())
          << core::to_string(kind) << " at t=" << t;
    }
  }
  // A replay from step 0 has no recorded history to draw from — the
  // constructor rejects it rather than fabricating measurements.
  core::SimulatorCase c = core::simulator_case("vehicle_turning");
  c.steps = 80;
  c.attack_start = 0;
  c.attack_duration = 40;
  c.replay_record_start = 0;
  EXPECT_THROW((void)c.make_attack(core::AttackKind::kJitterReplay),
               std::invalid_argument);
}

// --- Edge case: single-sensor plant under every adversarial kind ------------

TEST(AdversarialEdge, SingleSensorPlantAllKindsDeterministic) {
  for (const core::AttackKind kind :
       {core::AttackKind::kStealthyRamp, core::AttackKind::kJitterReplay,
        core::AttackKind::kCoordinatedBias, core::AttackKind::kIntermittentBias}) {
    core::SimulatorCase c = core::simulator_case("vehicle_turning");
    ASSERT_EQ(c.model.state_dim(), 1u);
    c.steps = 300;  // keeps the template's 150+100 attack window inside the run
    core::DetectionSystem a(c, kind, 0xbeef, {});
    core::DetectionSystem b(c, kind, 0xbeef, {});
    for (std::size_t t = 0; t < c.steps; ++t) {
      const sim::StepRecord ra = a.step();
      const sim::StepRecord rb = b.step();
      ASSERT_EQ(ra.adaptive_alarm, rb.adaptive_alarm)
          << core::to_string(kind) << " t=" << t;
      ASSERT_EQ(ra.residual, rb.residual) << core::to_string(kind) << " t=" << t;
      ASSERT_TRUE(ra.residual.is_finite()) << core::to_string(kind) << " t=" << t;
    }
  }
}

// --- Edge case: window mean exactly on the threshold boundary ---------------

// The window test alarms on mean > tau, strictly.  With A = 0 the predicted
// state is B*u and residuals are fully controlled; dyadic values keep every
// mean exact, so the boundary can be probed to one ULP.
TEST(AdversarialEdge, MeanExactlyAtThresholdDoesNotAlarm) {
  models::DiscreteLti m;
  m.A = linalg::Matrix{{0.0}};
  m.B = linalg::Matrix{{0.0}};
  m.dt = 0.1;
  m.name = "boundary";
  const double tau_val = 0.25;  // dyadic: sums and means below stay exact
  const Vec tau{tau_val};

  detect::DataLogger log(m, 7);
  // Entry 0 has residual 0 by construction; steps 1..8 log estimate 0.25,
  // so residual |0 - 0.25| = 0.25 exactly at each of them.
  (void)log.log(0, Vec{tau_val}, Vec{0.0});
  for (std::size_t t = 1; t <= 8; ++t) (void)log.log(t, Vec{tau_val}, Vec{0.0});

  // Window of size 7 over steps [1, 8]: eight points of exactly 0.25 —
  // the mean sits exactly on tau and must NOT alarm (strict inequality).
  const detect::WindowDecision at = detect::evaluate_window(log, 8, 7, tau);
  EXPECT_EQ(at.mean_residual[0], tau_val);
  EXPECT_FALSE(at.alarm);

  // One ULP above the threshold must alarm.
  const Vec tau_below{std::nextafter(tau_val, 0.0)};
  const detect::WindowDecision above = detect::evaluate_window(log, 8, 7, tau_below);
  EXPECT_TRUE(above.alarm);
}

// A stealthy ramp that has saturated holds its bias at margin * tau; feeding
// those deliveries as residuals directly into the window test shows the
// attack's envelope keeps every mean strictly under the threshold.
TEST(AdversarialEdge, SaturatedStealthyRampMeanStaysStrictlyUnderTau) {
  const Vec tau{0.5};
  const double margin = 0.5;
  const std::size_t horizon = 4;
  const attack::StealthyRampAttack atk({0, 64}, tau, margin, horizon);

  models::DiscreteLti m;
  m.A = linalg::Matrix{{0.0}};
  m.B = linalg::Matrix{{0.0}};
  m.dt = 0.1;
  m.name = "boundary";
  detect::DataLogger log(m, 8);

  const std::vector<Vec> no_history;
  Vec delivered(1);
  (void)log.log(0, Vec{0.0}, Vec{0.0});
  for (std::size_t t = 1; t <= 32; ++t) {
    atk.apply_into(t, Vec{0.0}, no_history, delivered);
    (void)log.log(t, delivered, Vec{0.0});
    const detect::WindowDecision dec =
        detect::evaluate_window(log, t, std::min<std::size_t>(8, t), tau);
    EXPECT_FALSE(dec.alarm) << "t=" << t;
    EXPECT_LT(dec.mean_residual[0], tau[0]) << "t=" << t;
    EXPECT_LE(dec.mean_residual[0], margin * tau[0] + 1e-15) << "t=" << t;
  }
}

}  // namespace
}  // namespace awd
