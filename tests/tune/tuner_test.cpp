// Tune-tier tests for src/tune: chi2 math spot checks, the ISSUE acceptance
// gates (the tuner hits its target FAR within the relative tolerance on all
// four small seed plants, bit-identically at any thread count), FAR
// monotonicity in the threshold scale, typed rejection of bad options, and
// ROC sweep determinism/sanity.
#include "tune/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hpp"
#include "tune/roc.hpp"

namespace awd::tune {
namespace {

constexpr const char* kSeedPlants[] = {"aircraft_pitch", "vehicle_turning",
                                       "series_rlc", "dc_motor"};

TEST(Chi2, TailKnownValues) {
  // chi2(2) has the closed-form tail exp(-x/2).
  EXPECT_NEAR(chi2_tail(2.0, 2.0 * std::log(2.0)), 0.5, 1e-12);
  EXPECT_NEAR(chi2_tail(2.0, 0.0), 1.0, 1e-12);
  // Classic table entries.
  EXPECT_NEAR(chi2_tail(1.0, 3.841458820694124), 0.05, 1e-9);
  EXPECT_NEAR(chi2_tail(4.0, 9.487729036781154), 0.05, 1e-9);
}

TEST(Chi2, QuantileMatchesTables) {
  EXPECT_NEAR(chi2_quantile(1.0, 0.05), 3.841458820694124, 1e-6);
  EXPECT_NEAR(chi2_quantile(4.0, 0.05), 9.487729036781154, 1e-6);
  EXPECT_NEAR(chi2_quantile(10.0, 0.01), 23.209251158954356, 1e-5);
}

TEST(Chi2, QuantileInvertsTail) {
  for (const double dof : {1.0, 3.0, 7.5, 40.0}) {
    for (const double alpha : {0.2, 0.05, 0.005}) {
      const double x = chi2_quantile(dof, alpha);
      EXPECT_NEAR(chi2_tail(dof, x), alpha, 1e-10) << "dof " << dof;
    }
  }
}

TEST(Chi2, RejectsBadArguments) {
  EXPECT_THROW((void)chi2_tail(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)chi2_quantile(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)chi2_quantile(1.0, 1.0), std::invalid_argument);
}

// The ISSUE acceptance gate: on every small seed plant the tuner converges
// and the achieved FAR lands within +-20 % (relative) of the target.
TEST(Tuner, HitsTargetFarOnSeedPlants) {
  for (const char* plant : kSeedPlants) {
    const core::SimulatorCase scase = core::simulator_case(plant);
    TuneOptions opts;
    opts.target_far = 0.05;
    opts.trials = 12;
    opts.rel_tolerance = 0.2;
    opts.threads = 3;
    const core::Result<TuneReport> res = tune_detector(scase, opts);
    ASSERT_TRUE(res.is_ok()) << plant << ": " << res.status().message();
    const TuneReport& rep = res.value();
    EXPECT_TRUE(rep.converged)
        << plant << ": achieved " << rep.achieved_far << " vs target "
        << opts.target_far << " after " << rep.iterations << " measurements";
    EXPECT_LE(std::abs(rep.achieved_far - opts.target_far),
              opts.rel_tolerance * opts.target_far)
        << plant << ": achieved " << rep.achieved_far;
    // The evidence base must be real: thousands of clean steps, a valid
    // tuned case, strictly positive thresholds.
    EXPECT_GT(rep.clean_steps, 1000u) << plant;
    EXPECT_TRUE(rep.tuned.check().is_ok()) << plant;
    for (std::size_t d = 0; d < rep.tuned.tau.size(); ++d) {
      EXPECT_GT(rep.tuned.tau[d], 0.0) << plant << " dim " << d;
      EXPECT_GT(rep.sigma[d], 0.0) << plant << " dim " << d;
    }
    EXPECT_GT(rep.chi2_threshold, 0.0) << plant;
  }
}

// Determinism across thread counts: the whole report (scale, thresholds,
// measured rates, iteration count) must be bitwise identical.
TEST(Tuner, ReportBitIdenticalAcrossThreadCounts) {
  const core::SimulatorCase scase = core::simulator_case("vehicle_turning");
  TuneOptions opts;
  opts.target_far = 0.05;
  opts.trials = 8;
  opts.threads = 1;
  const TuneReport serial = tune_detector(scase, opts).value();
  opts.threads = 3;
  const TuneReport parallel = tune_detector(scase, opts).value();
  opts.threads = 7;
  const TuneReport odd = tune_detector(scase, opts).value();

  for (const TuneReport* rep : {&parallel, &odd}) {
    EXPECT_EQ(serial.scale, rep->scale);
    EXPECT_EQ(serial.achieved_far, rep->achieved_far);
    EXPECT_EQ(serial.achieved_far_fixed, rep->achieved_far_fixed);
    EXPECT_EQ(serial.iterations, rep->iterations);
    EXPECT_EQ(serial.converged, rep->converged);
    EXPECT_EQ(serial.clean_steps, rep->clean_steps);
    ASSERT_EQ(serial.tuned.tau.size(), rep->tuned.tau.size());
    for (std::size_t d = 0; d < serial.tuned.tau.size(); ++d) {
      EXPECT_EQ(serial.tuned.tau[d], rep->tuned.tau[d]) << "dim " << d;
      EXPECT_EQ(serial.sigma[d], rep->sigma[d]) << "dim " << d;
      EXPECT_EQ(serial.tau0[d], rep->tau0[d]) << "dim " << d;
    }
  }
}

TEST(Tuner, MeasuredFarMonotoneInThresholdScale) {
  core::SimulatorCase scase = core::simulator_case("vehicle_turning");
  TuneOptions opts;
  opts.trials = 6;
  std::size_t prev_alarms = static_cast<std::size_t>(-1);
  for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
    core::SimulatorCase probe = scase;
    for (std::size_t d = 0; d < probe.tau.size(); ++d) probe.tau[d] = scase.tau[d] * scale;
    const FarSample f = measure_far(probe, opts);
    // Detection is passive: the residual stream is threshold-independent,
    // so raising tau can only remove alarms, never add them.
    EXPECT_LE(f.alarms, prev_alarms) << "scale " << scale;
    prev_alarms = f.alarms;
  }
}

TEST(Tuner, MeasureFarBitIdenticalAcrossThreadCounts) {
  const core::SimulatorCase scase = core::simulator_case("dc_motor");
  TuneOptions opts;
  opts.trials = 9;
  opts.threads = 1;
  const FarSample serial = measure_far(scase, opts);
  opts.threads = 4;
  const FarSample parallel = measure_far(scase, opts);
  EXPECT_EQ(serial.alarms, parallel.alarms);
  EXPECT_EQ(serial.alarms_fixed, parallel.alarms_fixed);
  EXPECT_EQ(serial.clean_steps, parallel.clean_steps);
  EXPECT_EQ(serial.far, parallel.far);
  EXPECT_EQ(serial.far_fixed, parallel.far_fixed);
}

TEST(Tuner, RejectsOutOfRangeOptions) {
  const core::SimulatorCase scase = core::simulator_case("vehicle_turning");
  {
    TuneOptions opts;
    opts.target_far = 1.5;
    const core::Result<TuneReport> res = tune_detector(scase, opts);
    ASSERT_FALSE(res.is_ok());
    EXPECT_EQ(res.status().code(), core::StatusCode::kInvalidInput);
  }
  {
    TuneOptions opts;
    opts.target_far = -0.1;
    EXPECT_FALSE(tune_detector(scase, opts).is_ok());
  }
  {
    TuneOptions opts;
    opts.rel_tolerance = 0.0;
    EXPECT_FALSE(tune_detector(scase, opts).is_ok());
  }
  {
    TuneOptions opts;
    opts.max_iterations = 3;
    EXPECT_FALSE(tune_detector(scase, opts).is_ok());
  }
  {
    // An invalid case is rejected with a typed Status, not an exception.
    core::SimulatorCase bad = scase;
    bad.tune_trials = 0;
    const core::Result<TuneReport> res = tune_detector(bad, TuneOptions{});
    ASSERT_FALSE(res.is_ok());
    EXPECT_EQ(res.status().code(), core::StatusCode::kInvalidInput);
  }
}

TEST(Roc, SweepDeterministicAndSane) {
  const core::SimulatorCase scase = core::simulator_case("vehicle_turning");
  RocOptions opts;
  opts.scales = {0.5, 1.0, 2.0};
  opts.far_trials = 4;
  opts.tpr_trials = 2;
  opts.threads = 3;
  const RocCurve a = roc_sweep(scase, opts).value();
  opts.threads = 1;
  const RocCurve b = roc_sweep(scase, opts).value();

  ASSERT_EQ(a.points.size(), 3u);
  EXPECT_EQ(a.auc, b.auc);  // bitwise across thread counts
  EXPECT_GE(a.auc, 0.0);
  EXPECT_LE(a.auc, 1.0);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].far, b.points[i].far);
    EXPECT_EQ(a.points[i].detected, b.points[i].detected);
    EXPECT_GE(a.points[i].far, 0.0);
    EXPECT_LE(a.points[i].far, 1.0);
    EXPECT_GE(a.points[i].tpr, 0.0);
    EXPECT_LE(a.points[i].tpr, 1.0);
    EXPECT_EQ(a.points[i].attacked_runs, opts.tpr_trials * 4);  // 4 attack kinds
  }
}

TEST(Roc, RejectsDegenerateOptions) {
  const core::SimulatorCase scase = core::simulator_case("vehicle_turning");
  {
    RocOptions opts;
    opts.far_trials = 0;
    EXPECT_FALSE(roc_sweep(scase, opts).is_ok());
  }
  {
    RocOptions opts;
    opts.attacks.clear();
    EXPECT_FALSE(roc_sweep(scase, opts).is_ok());
  }
  {
    RocOptions opts;
    opts.scales = {0.0};
    EXPECT_FALSE(roc_sweep(scase, opts).is_ok());
  }
  {
    core::SimulatorCase no_attack = scase;
    no_attack.attack_start = 0;
    no_attack.attack_duration = 0;
    EXPECT_FALSE(roc_sweep(no_attack, RocOptions{}).is_ok());
  }
}

}  // namespace
}  // namespace awd::tune
