// awd_ckpt — snapshot inspection/validation tool (DESIGN.md §13).
//
// Usage: awd_ckpt inspect <file> [--json]
//        awd_ckpt validate <file>
//
// `inspect` parses a StreamEngine snapshot down to its structural summary
// (format version, fingerprint, engine counters, per-stream progress) and
// prints it as text or JSON; it reconstructs no pipeline state, so pointing
// it at an untrusted or corrupt file is safe.  `validate` runs the same
// framing checks (magic, version, CRCs, section structure, fingerprint) and
// reports PASS/FAIL with the typed error — the operator-facing form of the
// guarantee that a damaged snapshot can never be half-restored.
//
// Exit codes: 0 valid, 1 invalid/corrupt snapshot, 2 usage or I/O error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

const char* attack_name(AttackKind k) {
  switch (k) {
    case AttackKind::kNone: return "none";
    case AttackKind::kBias: return "bias";
    case AttackKind::kDelay: return "delay";
    case AttackKind::kReplay: return "replay";
    case AttackKind::kFreeze: return "freeze";
    case AttackKind::kRamp: return "ramp";
    case AttackKind::kStealthyRamp: return "stealthy_ramp";
    case AttackKind::kJitterReplay: return "jitter_replay";
    case AttackKind::kCoordinatedBias: return "coordinated_bias";
    case AttackKind::kIntermittentBias: return "intermittent_bias";
  }
  return "unknown";
}

void print_stream_text(const SnapshotStreamInfo& s, const char* label) {
  std::printf("  %-8s #%-4llu %-18s %-7s seed %-6llu %zu/%zu steps\n", label,
              static_cast<unsigned long long>(s.id), s.case_key.c_str(),
              attack_name(s.attack), static_cast<unsigned long long>(s.seed),
              s.steps_done, s.steps_total);
}

void print_stream_json(const SnapshotStreamInfo& s, bool last) {
  std::printf(
      "      {\"id\": %llu, \"case\": \"%s\", \"attack\": \"%s\", "
      "\"seed\": %llu, \"steps_done\": %zu, \"steps_total\": %zu}%s\n",
      static_cast<unsigned long long>(s.id), s.case_key.c_str(),
      attack_name(s.attack), static_cast<unsigned long long>(s.seed), s.steps_done,
      s.steps_total, last ? "" : ",");
}

void print_text(const std::string& path, const SnapshotInfo& info) {
  std::printf("%s: awd snapshot v%u, %zu bytes, %zu sections\n", path.c_str(),
              info.version, info.bytes, info.sections);
  std::printf("  fingerprint      %016llx\n",
              static_cast<unsigned long long>(info.fingerprint));
  std::printf("  streams          %zu running, %zu pending, %zu finished (undrained)\n",
              info.running.size(), info.pending.size(), info.finished);
  std::printf("  counters         admitted %llu, finished %llu, rejected %llu, "
              "steps %llu, next id %llu\n",
              static_cast<unsigned long long>(info.streams_admitted),
              static_cast<unsigned long long>(info.streams_finished),
              static_cast<unsigned long long>(info.streams_rejected),
              static_cast<unsigned long long>(info.steps_total),
              static_cast<unsigned long long>(info.next_id));
  std::printf("  serving policy   max_streams %zu, queue_capacity %zu, "
              "lean_records %s, per_step_obs %s, shared_estimators %s\n",
              info.max_streams, info.queue_capacity,
              info.lean_records ? "on" : "off", info.per_step_obs ? "on" : "off",
              info.share_deadline_estimators ? "on" : "off");
  for (const SnapshotStreamInfo& s : info.running) print_stream_text(s, "running");
  for (const SnapshotStreamInfo& s : info.pending) print_stream_text(s, "pending");
}

void print_json(const SnapshotInfo& info) {
  std::printf("{\n");
  std::printf("  \"version\": %u,\n", info.version);
  std::printf("  \"bytes\": %zu,\n", info.bytes);
  std::printf("  \"sections\": %zu,\n", info.sections);
  std::printf("  \"fingerprint\": \"%016llx\",\n",
              static_cast<unsigned long long>(info.fingerprint));
  std::printf("  \"counters\": {\"admitted\": %llu, \"finished\": %llu, "
              "\"rejected\": %llu, \"steps_total\": %llu, \"next_id\": %llu},\n",
              static_cast<unsigned long long>(info.streams_admitted),
              static_cast<unsigned long long>(info.streams_finished),
              static_cast<unsigned long long>(info.streams_rejected),
              static_cast<unsigned long long>(info.steps_total),
              static_cast<unsigned long long>(info.next_id));
  std::printf("  \"policy\": {\"max_streams\": %zu, \"queue_capacity\": %zu, "
              "\"lean_records\": %s, \"per_step_obs\": %s, "
              "\"share_deadline_estimators\": %s},\n",
              info.max_streams, info.queue_capacity,
              info.lean_records ? "true" : "false",
              info.per_step_obs ? "true" : "false",
              info.share_deadline_estimators ? "true" : "false");
  std::printf("  \"finished_undrained\": %zu,\n", info.finished);
  std::printf("  \"running\": [");
  if (!info.running.empty()) {
    std::printf("\n");
    for (std::size_t i = 0; i < info.running.size(); ++i) {
      print_stream_json(info.running[i], i + 1 == info.running.size());
    }
    std::printf("  ");
  }
  std::printf("],\n");
  std::printf("  \"pending\": [");
  if (!info.pending.empty()) {
    std::printf("\n");
    for (std::size_t i = 0; i < info.pending.size(); ++i) {
      print_stream_json(info.pending[i], i + 1 == info.pending.size());
    }
    std::printf("  ");
  }
  std::printf("]\n");
  std::printf("}\n");
}

int usage() {
  std::fprintf(stderr,
               "usage: awd_ckpt inspect <file> [--json]\n"
               "       awd_ckpt validate <file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  bool json = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      return usage();
    }
  }
  if (command != "inspect" && command != "validate") return usage();

  Result<std::vector<std::uint8_t>> bytes = core::ckpt::read_file(path);
  if (!bytes.is_ok()) {
    std::fprintf(stderr, "awd_ckpt: %s: %.*s\n", path.c_str(),
                 static_cast<int>(bytes.status().message().size()),
                 bytes.status().message().data());
    return 2;
  }

  Result<SnapshotInfo> info = describe_snapshot(bytes.value());
  if (command == "validate") {
    if (info.is_ok()) {
      std::printf("PASS %s: v%u, %zu bytes, %zu sections, %zu running, "
                  "%zu pending, fingerprint %016llx\n",
                  path.c_str(), info.value().version, info.value().bytes,
                  info.value().sections, info.value().running.size(),
                  info.value().pending.size(),
                  static_cast<unsigned long long>(info.value().fingerprint));
      return 0;
    }
    std::printf("FAIL %s: [%.*s] %.*s\n", path.c_str(),
                static_cast<int>(core::to_string(info.status().code()).size()),
                core::to_string(info.status().code()).data(),
                static_cast<int>(info.status().message().size()),
                info.status().message().data());
    return 1;
  }

  if (!info.is_ok()) {
    std::fprintf(stderr, "awd_ckpt: %s: [%.*s] %.*s\n", path.c_str(),
                 static_cast<int>(core::to_string(info.status().code()).size()),
                 core::to_string(info.status().code()).data(),
                 static_cast<int>(info.status().message().size()),
                 info.status().message().data());
    return 1;
  }
  if (json) {
    print_json(info.value());
  } else {
    print_text(path, info.value());
  }
  return 0;
}
