// awd_forensics — flight-recorder dump decoder and alarm replay verifier
// (DESIGN.md §15).
//
// Usage: awd_forensics info <file.awdfr> [--json]
//        awd_forensics frames <file.awdfr> [--tail N]
//        awd_forensics replay <file.awdfr> [--json]
//
// `info` decodes a dump down to its meta/spec summary; `frames` prints the
// captured window one step per line (residual norm, detector statistic,
// window, deadline, flags); `replay` rebuilds the stream from the embedded
// spec, re-runs it deterministically, and verifies every captured frame
// bit-for-bit plus the trigger condition — the operator-facing form of the
// guarantee that a dump faithfully describes what the detector saw.
//
// Exit codes: 0 decoded (and, for replay, verified); 1 corrupt dump or
// failed verification; 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

const char* attack_name(AttackKind k) {
  switch (k) {
    case AttackKind::kNone: return "none";
    case AttackKind::kBias: return "bias";
    case AttackKind::kDelay: return "delay";
    case AttackKind::kReplay: return "replay";
    case AttackKind::kFreeze: return "freeze";
    case AttackKind::kRamp: return "ramp";
    case AttackKind::kStealthyRamp: return "stealthy_ramp";
    case AttackKind::kJitterReplay: return "jitter_replay";
    case AttackKind::kCoordinatedBias: return "coordinated_bias";
    case AttackKind::kIntermittentBias: return "intermittent_bias";
  }
  return "unknown";
}

/// Render a frame's flag bits as a compact mnemonic string ("A" adaptive
/// alarm, "F" fixed alarm, "a" attack active, "u" unsafe, "m" sample
/// missing, "e" estimate fallback, "q" quarantined, "d" deadline fallback).
std::string flag_string(const obs::FlightFrame& f) {
  std::string s;
  if (f.flag(obs::kFrameAdaptiveAlarm)) s += 'A';
  if (f.flag(obs::kFrameFixedAlarm)) s += 'F';
  if (f.flag(obs::kFrameAttackActive)) s += 'a';
  if (f.flag(obs::kFrameUnsafe)) s += 'u';
  if (f.flag(obs::kFrameSampleMissing)) s += 'm';
  if (f.flag(obs::kFrameEstimateFallback)) s += 'e';
  if (f.flag(obs::kFrameResidualQuarantined)) s += 'q';
  if (f.flag(obs::kFrameDeadlineFallback)) s += 'd';
  return s.empty() ? "-" : s;
}

void print_info_text(const std::string& path, const ForensicsDump& d) {
  std::printf("%s: awd forensic dump, reason %s\n", path.c_str(),
              serve::dump_reason_name(d.reason));
  std::printf("  stream           #%llu (shard %llu)\n",
              static_cast<unsigned long long>(d.stream),
              static_cast<unsigned long long>(d.shard));
  std::printf("  trigger          step %llu of %llu done (%zu total)\n",
              static_cast<unsigned long long>(d.trigger_step),
              static_cast<unsigned long long>(d.steps_done), d.spec.steps);
  std::printf("  spec             %s, attack %s, seed %llu\n", d.spec.scase.key.c_str(),
              attack_name(d.spec.attack),
              static_cast<unsigned long long>(d.spec.seed));
  std::printf("  frames           %zu (steps %llu..%llu)\n", d.frames.size(),
              d.frames.empty() ? 0ULL
                               : static_cast<unsigned long long>(d.frames.front().t),
              d.frames.empty() ? 0ULL
                               : static_cast<unsigned long long>(d.frames.back().t));
  std::printf("  timestamp        %llu ns (monotonic)\n",
              static_cast<unsigned long long>(d.ts_ns));
}

void print_info_json(const ForensicsDump& d) {
  std::printf("{\n");
  std::printf("  \"reason\": \"%s\",\n", serve::dump_reason_name(d.reason));
  std::printf("  \"stream\": %llu,\n", static_cast<unsigned long long>(d.stream));
  std::printf("  \"shard\": %llu,\n", static_cast<unsigned long long>(d.shard));
  std::printf("  \"trigger_step\": %llu,\n",
              static_cast<unsigned long long>(d.trigger_step));
  std::printf("  \"steps_done\": %llu,\n",
              static_cast<unsigned long long>(d.steps_done));
  std::printf("  \"ts_ns\": %llu,\n", static_cast<unsigned long long>(d.ts_ns));
  std::printf("  \"case\": \"%s\",\n", d.spec.scase.key.c_str());
  std::printf("  \"attack\": \"%s\",\n", attack_name(d.spec.attack));
  std::printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(d.spec.seed));
  std::printf("  \"steps_total\": %zu,\n", d.spec.steps);
  std::printf("  \"frames\": %zu\n", d.frames.size());
  std::printf("}\n");
}

void print_frames(const ForensicsDump& d, std::size_t tail) {
  const std::size_t n = d.frames.size();
  const std::size_t first = tail != 0 && tail < n ? n - tail : 0;
  std::printf("%8s %14s %14s %7s %9s %6s %6s %s\n", "step", "resid_norm",
              "detect_stat", "window", "deadline", "fault", "health", "flags");
  for (std::size_t i = first; i < n; ++i) {
    const obs::FlightFrame& f = d.frames[i];
    const char* marker = f.t == d.trigger_step ? "  <-- trigger" : "";
    std::printf("%8llu %14.6g %14.6g %7u %9u %6u %6u %s%s\n",
                static_cast<unsigned long long>(f.t), f.residual_norm, f.detect_stat,
                f.window, f.deadline, f.fault, f.health, flag_string(f).c_str(),
                marker);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: awd_forensics info <file.awdfr> [--json]\n"
               "       awd_forensics frames <file.awdfr> [--tail N]\n"
               "       awd_forensics replay <file.awdfr> [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  bool json = false;
  std::size_t tail = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--tail") == 0 && i + 1 < argc) {
      tail = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      return usage();
    }
  }
  if (command != "info" && command != "frames" && command != "replay") return usage();

  Result<std::vector<std::uint8_t>> bytes = core::ckpt::read_file(path);
  if (!bytes.is_ok()) {
    std::fprintf(stderr, "awd_forensics: %s: %.*s\n", path.c_str(),
                 static_cast<int>(bytes.status().message().size()),
                 bytes.status().message().data());
    return 2;
  }

  Result<ForensicsDump> dump = decode_dump(bytes.value());
  if (!dump.is_ok()) {
    std::fprintf(stderr, "awd_forensics: %s: [%.*s] %.*s\n", path.c_str(),
                 static_cast<int>(core::to_string(dump.status().code()).size()),
                 core::to_string(dump.status().code()).data(),
                 static_cast<int>(dump.status().message().size()),
                 dump.status().message().data());
    return 1;
  }
  const ForensicsDump& d = dump.value();

  if (command == "info") {
    if (json) {
      print_info_json(d);
    } else {
      print_info_text(path, d);
    }
    return 0;
  }
  if (command == "frames") {
    print_frames(d, tail);
    return 0;
  }

  // replay
  Result<ReplayReport> replayed = replay_dump(d);
  if (!replayed.is_ok()) {
    std::fprintf(stderr, "awd_forensics: replay failed: [%.*s] %.*s\n",
                 static_cast<int>(core::to_string(replayed.status().code()).size()),
                 core::to_string(replayed.status().code()).data(),
                 static_cast<int>(replayed.status().message().size()),
                 replayed.status().message().data());
    return 1;
  }
  const ReplayReport& rep = replayed.value();
  if (json) {
    std::printf("{\n");
    std::printf("  \"verified\": %s,\n", rep.verified() ? "true" : "false");
    std::printf("  \"steps_replayed\": %zu,\n", rep.steps_replayed);
    std::printf("  \"frames_compared\": %zu,\n", rep.frames_compared);
    std::printf("  \"frames_identical\": %s,\n", rep.frames_identical ? "true" : "false");
    std::printf("  \"trigger_reproduced\": %s,\n",
                rep.trigger_reproduced ? "true" : "false");
    std::printf("  \"trigger_stat\": %.17g,\n", rep.trigger_stat);
    std::printf("  \"mismatch\": \"%s\"\n", rep.mismatch.c_str());
    std::printf("}\n");
  } else {
    std::printf("%s %s: replayed %zu steps, %zu frames bit-%s, trigger (%s) %s, "
                "detector stat %.6g\n",
                rep.verified() ? "PASS" : "FAIL", path.c_str(), rep.steps_replayed,
                rep.frames_compared, rep.frames_identical ? "identical" : "DIFFERENT",
                serve::dump_reason_name(d.reason),
                rep.trigger_reproduced ? "reproduced" : "NOT reproduced",
                rep.trigger_stat);
    if (!rep.mismatch.empty()) std::printf("  %s\n", rep.mismatch.c_str());
  }
  return rep.verified() ? 0 : 1;
}
