// awd_reach — offline deadline-table precompute and inspection
// (DESIGN.md §17).
//
// Usage: awd_reach build <case_key> <file> [--cells N] [--source box|ellipsoid]
//                        [--init-radius R] [--max-window W]
//        awd_reach info  <file>
//        awd_reach check <case_key> <file> [--cells N] [--source box|ellipsoid]
//                        [--init-radius R] [--max-window W]
//
// `build` derives the case's reach::BackendSpec, runs the grid precompute
// (every cell's deadline from an inflated walk at the cell center, so the
// stored value lower-bounds the source backend everywhere in the cell), and
// ships the table through the core::ckpt codec — header fingerprint = the
// source spec's fingerprint, CRC-framed sections, the same validation
// pipeline every other snapshot passes.
//
// `info` decodes a table file structurally (no case needed) and prints its
// provenance: source kind and fingerprint, grid shape, domain, deadline
// histogram bounds.  `check` re-derives the spec from a case and verifies
// the file was precomputed for exactly that configuration — the operator
// form of the load-time rejection TableBackend enforces.
//
// Exit codes: 0 success, 1 invalid/mismatched table, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

int usage() {
  std::fprintf(stderr,
               "usage: awd_reach build <case_key> <file> [--cells N] "
               "[--source box|ellipsoid] [--init-radius R] [--max-window W]\n"
               "       awd_reach info  <file>\n"
               "       awd_reach check <case_key> <file> [--cells N] "
               "[--source box|ellipsoid] [--init-radius R] [--max-window W]\n");
  return 2;
}

int fail_status(const char* verb, const Status& s) {
  std::fprintf(stderr, "awd_reach: %s: [%.*s] %.*s\n", verb,
               static_cast<int>(core::to_string(s.code()).size()),
               core::to_string(s.code()).data(),
               static_cast<int>(s.message().size()), s.message().data());
  return 1;
}

void print_table(const DeadlineTable& t) {
  std::printf("  source           %.*s\n",
              static_cast<int>(reach::to_string(t.source).size()),
              reach::to_string(t.source).data());
  std::printf("  source spec      %016llx\n",
              static_cast<unsigned long long>(t.source_fingerprint));
  std::printf("  state dim        %zu\n", t.dim);
  std::printf("  max window       %zu\n", t.max_window);
  std::size_t cells = 1;
  std::printf("  grid             ");
  for (std::size_t d = 0; d < t.dim; ++d) {
    std::printf("%s%zu", d == 0 ? "" : " x ", t.cells[d]);
    cells *= t.cells[d];
  }
  std::printf(" = %zu cells (%zu bytes of deadlines)\n", cells,
              t.deadlines.size() * sizeof(std::uint16_t));
  for (std::size_t d = 0; d < t.dim; ++d) {
    std::printf("  domain[%zu]        [%.17g, %.17g]\n", d, t.domain[d].lo,
                t.domain[d].hi);
  }
  std::uint16_t lo = t.deadlines.empty() ? 0 : t.deadlines[0];
  std::uint16_t hi = lo;
  for (const std::uint16_t v : t.deadlines) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("  deadlines        min %u, max %u\n", lo, hi);
}

/// The spec `DetectionSystem::create` would derive for this case, with the
/// tool's grid/source overrides applied on top.
Result<BackendSpec> derive_spec(const std::string& case_key, double init_radius,
                                std::size_t max_window, std::size_t cells,
                                BackendKind source) {
  SimulatorCase scase;
  try {
    scase = simulator_case(case_key);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "awd_reach: %s\n", e.what());
    return Status{StatusCode::kInvalidInput, "unknown case key"};
  }
  scase.reach_backend = BackendKind::kTable;
  if (cells != 0) scase.reach_table_cells = cells;
  if (max_window != 0) scase.max_window = max_window;
  if (Status s = scase.check(); !s.is_ok()) return s;
  BackendSpec spec = make_backend_spec(scase, init_radius, 0);
  spec.table.source = source;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "info") {
    const std::string path = argv[2];
    Result<std::vector<std::uint8_t>> bytes = core::ckpt::read_file(path);
    if (!bytes.is_ok()) return fail_status(path.c_str(), bytes.status()), 2;
    Result<DeadlineTable> table = decode_table(bytes.value());
    if (!table.is_ok()) return fail_status(path.c_str(), table.status());
    std::printf("%s: awd deadline table, %zu bytes\n", path.c_str(),
                bytes.value().size());
    print_table(table.value());
    return 0;
  }

  if (command != "build" && command != "check") return usage();
  if (argc < 4) return usage();
  const std::string case_key = argv[2];
  const std::string path = argv[3];
  std::size_t cells = 0;
  std::size_t max_window = 0;
  double init_radius = 0.0;
  BackendKind source = BackendKind::kBox;
  for (int i = 4; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--cells") == 0 && has_value) {
      cells = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--max-window") == 0 && has_value) {
      max_window = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--init-radius") == 0 && has_value) {
      init_radius = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--source") == 0 && has_value) {
      const char* v = argv[++i];
      if (std::strcmp(v, "box") == 0) {
        source = BackendKind::kBox;
      } else if (std::strcmp(v, "ellipsoid") == 0) {
        source = BackendKind::kEllipsoid;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }

  Result<BackendSpec> spec = derive_spec(case_key, init_radius, max_window, cells, source);
  if (!spec.is_ok()) {
    fail_status(case_key.c_str(), spec.status());
    return 2;
  }

  if (command == "build") {
    Result<DeadlineTable> table = build_table(spec.value());
    if (!table.is_ok()) return fail_status("build", table.status());
    if (Status s = core::ckpt::write_file(path, encode_table(table.value()));
        !s.is_ok()) {
      return fail_status(path.c_str(), s), 2;
    }
    std::printf("wrote %s (spec %016llx)\n", path.c_str(),
                static_cast<unsigned long long>(spec_fingerprint(spec.value())));
    print_table(table.value());
    return 0;
  }

  // check: decode the file and run the exact load-time validation serving
  // would apply (fingerprint, grid shape, domain, deadline bounds).
  Result<std::vector<std::uint8_t>> bytes = core::ckpt::read_file(path);
  if (!bytes.is_ok()) return fail_status(path.c_str(), bytes.status()), 2;
  Result<DeadlineTable> table = decode_table(bytes.value());
  if (!table.is_ok()) {
    std::printf("FAIL %s: corrupt or malformed table\n", path.c_str());
    return fail_status(path.c_str(), table.status());
  }
  Result<std::unique_ptr<Backend>> backend =
      make_table_backend(spec.value(), std::move(table).value());
  if (!backend.is_ok()) {
    std::printf("FAIL %s: table does not match case '%s'\n", path.c_str(),
                case_key.c_str());
    return fail_status(path.c_str(), backend.status());
  }
  std::printf("PASS %s: matches case '%s' (spec %016llx)\n", path.c_str(),
              case_key.c_str(),
              static_cast<unsigned long long>(spec_fingerprint(spec.value())));
  return 0;
}
