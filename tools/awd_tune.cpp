// awd_tune — command-line front end for the detector auto-tuner
// (DESIGN.md §16).
//
// Usage: awd_tune <case_key|all> [options]
//   --target-far F    target false-alarm rate in (0,1)   (default: case's)
//   --trials N        attack-free Monte-Carlo runs per FAR measurement
//   --tolerance R     relative convergence band |far-target| <= R*target
//   --threads N       parallel_for width (results bit-identical at any N)
//   --seed S          base seed for the trial-seed derivation
//   --roc             also sweep the ROC curve and print per-scale points
//
// Prints the closed-form chi2 initialization, the bisection outcome
// (scale, tuned tau, achieved FAR vs target), the windowed-chi2/CUSUM
// parameterization, and — with --roc — the FAR/TPR trade-off plus AUC.
// Every number is a pure function of (case, options): rerunning with a
// different --threads value must reproduce the output bit for bit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "awd.hpp"

namespace {

using namespace awd;

void print_vec(const char* label, const Vec& v) {
  std::printf("  %-18s [", label);
  for (std::size_t d = 0; d < v.size(); ++d)
    std::printf("%s%.6g", d == 0 ? "" : ", ", v[d]);
  std::printf("]\n");
}

int tune_one(const std::string& key, const TuneOptions& opts, bool with_roc) {
  SimulatorCase scase;
  try {
    scase = simulator_case(key);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "awd_tune: %s\n", e.what());
    return 1;
  }

  const Result<TuneReport> res = tune_detector(scase, opts);
  if (!res.is_ok()) {
    std::fprintf(stderr, "awd_tune: %s: %.*s\n", key.c_str(),
                 static_cast<int>(res.status().message().size()),
                 res.status().message().data());
    return 1;
  }
  const TuneReport& rep = res.value();

  std::printf("%s (n=%zu, w_m=%zu)\n", key.c_str(), scase.model.state_dim(),
              scase.max_window);
  print_vec("sigma", rep.sigma);
  print_vec("tau0 (chi2 init)", rep.tau0);
  print_vec("tau (tuned)", rep.tuned.tau);
  std::printf("  %-18s %.6g\n", "scale", rep.scale);
  std::printf("  %-18s %.6g\n", "chi2 threshold", rep.chi2_threshold);
  print_vec("cusum drift", rep.cusum_drift);
  print_vec("cusum threshold", rep.cusum_threshold);
  std::printf("  %-18s %.6g (target %.6g, fixed-window %.6g)\n", "achieved FAR",
              rep.achieved_far, rep.target_far, rep.achieved_far_fixed);
  std::printf("  %-18s %s after %zu measurements over %zu clean steps\n", "converged",
              rep.converged ? "yes" : "NO", rep.iterations, rep.clean_steps);

  if (with_roc) {
    RocOptions ropts;
    ropts.threads = opts.threads;
    const Result<RocCurve> roc = roc_sweep(rep.tuned, ropts);
    if (!roc.is_ok()) {
      std::fprintf(stderr, "awd_tune: %s: roc sweep failed\n", key.c_str());
      return 1;
    }
    std::printf("  roc (%zu scales):\n", roc.value().points.size());
    for (const RocPoint& p : roc.value().points) {
      std::printf("    scale %-7.3g far %-10.6g tpr %-10.6g (%zu/%zu attacked runs)\n",
                  p.scale, p.far, p.tpr, p.detected, p.attacked_runs);
    }
    std::printf("  %-18s %.6f\n", "auc", roc.value().auc);
  }
  std::printf("\n");
  return rep.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: awd_tune <case_key|all> [--target-far F] [--trials N] "
                 "[--tolerance R] [--threads N] [--seed S] [--roc]\n");
    return 2;
  }
  const std::string key = argv[1];
  TuneOptions opts;
  bool with_roc = false;
  for (int i = 2; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "awd_tune: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--target-far") == 0) {
      opts.target_far = std::strtod(next("--target-far"), nullptr);
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      opts.trials = std::strtoul(next("--trials"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      opts.rel_tolerance = std::strtod(next("--tolerance"), nullptr);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opts.threads = std::strtoul(next("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.base_seed = std::strtoull(next("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--roc") == 0) {
      with_roc = true;
    } else {
      std::fprintf(stderr, "awd_tune: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  if (key == "all") {
    int rc = 0;
    for (const SimulatorCase& scase : table1_cases())
      rc |= tune_one(scase.key, opts, with_roc);
    return rc;
  }
  return tune_one(key, opts, with_roc);
}
