// bench_compare — CI benchmark-regression gate.
//
// Diffs a google-benchmark JSON report against a committed baseline and
// fails (exit 1) when any benchmark's per-iteration real time regressed by
// more than the tolerance (default 25 %).  Usage:
//
//   awd_bench_compare <baseline.json> <current.json> [--tolerance 0.25]
//
// The parser is deliberately minimal: it understands exactly the JSON that
// benchmark::JSONReporter emits (a "benchmarks" array of flat objects with
// "name", "run_type", "real_time", and "time_unit" fields), so the tool has
// no third-party dependencies.  Entries present only in the current report
// are informational; entries that disappeared from the current report fail
// the gate (a silently dropped benchmark would otherwise un-pin its path).
//
// When a report was produced with --benchmark_repetitions=N, the gate uses
// each benchmark's *minimum* across the repetition samples.  The minimum is
// the noise-robust statistic for microbenchmarks: scheduling interference
// and frequency scaling only ever add time, so min-of-N converges to the
// true cost floor and keeps the 25 % tolerance meaningful on shared CI
// runners.  Aggregate entries (mean/median/stddev) are ignored; a report
// without repetitions gates on its single iteration sample per benchmark.
//
// Reports written by run_benchmarks_with_json additionally carry an
// "awd_metrics" block with a "derived" section of iteration-count
// independent pipeline ratios.  When both reports have the block, the gate
// compares the deadline-cache hit rate and fails on an absolute drop beyond
// --metrics-tolerance (default 0.10): a hit-rate collapse means deadline
// queries silently fell back to the decay heuristic, which no timing
// tolerance would catch.  Reports without the block pass unchanged.
//
// Derived metrics named "roc_auc_<plant>" (emitted by bench_detector_roc)
// are the detection-quality gate: an absolute AUC drop beyond
// --auc-tolerance (default 0.02) fails, because area ceded to the attacker
// is a correctness regression regardless of how fast the sweep ran.
//
// Derived metrics named "reach_table_speedup_<plant>" (from
// bench_reach_backends) are gated against an *absolute floor*
// (--reach-speedup-min, default 10): the table backend's reason to exist is
// an order-of-magnitude cheaper estimate than the box walk, so the gate
// compares the current value to the floor, not to the baseline.
// "reach_conservatism_*" metrics ride the standard absolute-drop gate
// (--metrics-tolerance): a drop means deadlines turned uselessly tight.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchEntry {
  std::string name;
  double real_time_ns = 0.0;
};

/// Extract the string value of `"key": "..."` inside [begin, end).
std::string find_string_field(const std::string& text, std::size_t begin, std::size_t end,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, begin);
  if (at == std::string::npos || at >= end) return {};
  const std::size_t open = text.find('"', at + needle.size());
  if (open == std::string::npos || open >= end) return {};
  const std::size_t close = text.find('"', open + 1);
  if (close == std::string::npos || close >= end) return {};
  return text.substr(open + 1, close - open - 1);
}

/// Extract the numeric value of `"key": <number>` inside [begin, end).
bool find_number_field(const std::string& text, std::size_t begin, std::size_t end,
                       const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, begin);
  if (at == std::string::npos || at >= end) return false;
  const char* p = text.c_str() + at + needle.size();
  char* parse_end = nullptr;
  const double v = std::strtod(p, &parse_end);
  if (parse_end == p) return false;
  *out = v;
  return true;
}

double unit_to_ns(const std::string& unit) {
  if (unit == "ns" || unit.empty()) return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

/// Parse every per-iteration benchmark entry out of a JSONReporter file.
std::vector<BenchEntry> parse_report(const std::string& path, bool* ok) {
  *ok = false;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<BenchEntry> entries;
  const std::size_t array_at = text.find("\"benchmarks\":");
  if (array_at == std::string::npos) {
    std::fprintf(stderr, "bench_compare: %s has no \"benchmarks\" array\n", path.c_str());
    return {};
  }

  // Objects inside the benchmarks array are flat: scan brace-delimited
  // blocks from the array start.
  std::size_t pos = text.find('[', array_at);
  const std::size_t array_close = text.find(']', pos == std::string::npos ? array_at : pos);
  while (pos != std::string::npos) {
    const std::size_t open = text.find('{', pos);
    if (open == std::string::npos || (array_close != std::string::npos && open > array_close))
      break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;

    const std::string name = find_string_field(text, open, close, "name");
    const std::string run_type = find_string_field(text, open, close, "run_type");
    double real_time = 0.0;
    if (!name.empty() && (run_type.empty() || run_type == "iteration") &&
        find_number_field(text, open, close, "real_time", &real_time)) {
      const std::string unit = find_string_field(text, open, close, "time_unit");
      const double ns = real_time * unit_to_ns(unit);
      // Repetition samples share a name; fold them to the per-name minimum.
      bool merged = false;
      for (BenchEntry& e : entries) {
        if (e.name == name) {
          e.real_time_ns = std::min(e.real_time_ns, ns);
          merged = true;
          break;
        }
      }
      if (!merged) entries.push_back({name, ns});
    }
    pos = close + 1;
  }
  *ok = true;
  return entries;
}

const BenchEntry* find_entry(const std::vector<BenchEntry>& entries,
                             const std::string& name) {
  for (const BenchEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

struct DerivedMetric {
  std::string name;
  double value = 0.0;
};

/// Parse the "derived" section of a report's optional "awd_metrics" block.
/// Returns an empty vector (not an error) when the block is absent.
std::vector<DerivedMetric> parse_derived_metrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t block_at = text.find("\"awd_metrics\":");
  if (block_at == std::string::npos) return {};
  const std::size_t derived_at = text.find("\"derived\":", block_at);
  if (derived_at == std::string::npos) return {};
  const std::size_t open = text.find('{', derived_at);
  const std::size_t close = text.find('}', open == std::string::npos ? derived_at : open);
  if (open == std::string::npos || close == std::string::npos) return {};

  // The section is flat: "name": number pairs.
  std::vector<DerivedMetric> out;
  std::size_t pos = open + 1;
  while (pos < close) {
    const std::size_t k0 = text.find('"', pos);
    if (k0 == std::string::npos || k0 >= close) break;
    const std::size_t k1 = text.find('"', k0 + 1);
    if (k1 == std::string::npos || k1 >= close) break;
    const std::size_t colon = text.find(':', k1);
    if (colon == std::string::npos || colon >= close) break;
    char* parse_end = nullptr;
    const double v = std::strtod(text.c_str() + colon + 1, &parse_end);
    if (parse_end != text.c_str() + colon + 1) {
      out.push_back({text.substr(k0 + 1, k1 - k0 - 1), v});
    }
    pos = k1 + 1;
    const std::size_t comma = text.find(',', colon);
    if (comma == std::string::npos || comma >= close) break;
    pos = comma + 1;
  }
  return out;
}

const DerivedMetric* find_derived(const std::vector<DerivedMetric>& metrics,
                                  const std::string& name) {
  for (const DerivedMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

/// Derived ratios where a *drop* signals a pipeline regression (the cache
/// stopped serving queries); other derived metrics are informational.
const char* const kGatedDerived[] = {"deadline_cache_hit_rate"};

/// Detection-quality metrics (from bench_detector_roc): AUC per plant,
/// gated on absolute drop with its own tolerance — area ceded to the
/// attacker, not a timing ratio.
bool is_auc_metric(const std::string& name) {
  return name.rfind("roc_auc_", 0) == 0;
}

/// Reach-table speedup metrics (from bench_reach_backends): gated on the
/// current value clearing an absolute floor, independent of the baseline.
bool is_reach_speedup_metric(const std::string& name) {
  return name.rfind("reach_table_speedup_", 0) == 0;
}

/// Reach conservatism ratios: drop-gated like the cache hit rate.
bool is_reach_conservatism_metric(const std::string& name) {
  return name.rfind("reach_conservatism_", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.25;
  double metrics_tolerance = 0.10;
  double auc_tolerance = 0.02;
  double reach_speedup_min = 10.0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strcmp(argv[i], "--metrics-tolerance") == 0 && i + 1 < argc) {
      metrics_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--metrics-tolerance=", 20) == 0) {
      metrics_tolerance = std::strtod(argv[i] + 20, nullptr);
    } else if (std::strcmp(argv[i], "--auc-tolerance") == 0 && i + 1 < argc) {
      auc_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--auc-tolerance=", 16) == 0) {
      auc_tolerance = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strcmp(argv[i], "--reach-speedup-min") == 0 && i + 1 < argc) {
      reach_speedup_min = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--reach-speedup-min=", 20) == 0) {
      reach_speedup_min = std::strtod(argv[i] + 20, nullptr);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.size() != 2 || !(tolerance > 0.0) || !std::isfinite(tolerance) ||
      !(metrics_tolerance > 0.0) || !std::isfinite(metrics_tolerance) ||
      !(auc_tolerance > 0.0) || !std::isfinite(auc_tolerance) ||
      !(reach_speedup_min > 0.0) || !std::isfinite(reach_speedup_min)) {
    std::fprintf(stderr,
                 "usage: awd_bench_compare <baseline.json> <current.json> "
                 "[--tolerance 0.25] [--metrics-tolerance 0.10] "
                 "[--auc-tolerance 0.02] [--reach-speedup-min 10]\n");
    return 2;
  }

  bool base_ok = false;
  bool cur_ok = false;
  const std::vector<BenchEntry> baseline = parse_report(files[0], &base_ok);
  const std::vector<BenchEntry> current = parse_report(files[1], &cur_ok);
  if (!base_ok || !cur_ok) return 2;
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_compare: baseline %s has no benchmark entries\n",
                 files[0].c_str());
    return 2;
  }

  std::printf("%-45s %14s %14s %9s\n", "benchmark", "baseline (ns)", "current (ns)",
              "ratio");
  int regressions = 0;
  int missing = 0;
  for (const BenchEntry& base : baseline) {
    const BenchEntry* cur = find_entry(current, base.name);
    if (cur == nullptr) {
      std::printf("%-45s %14.1f %14s %9s  MISSING\n", base.name.c_str(), base.real_time_ns,
                  "-", "-");
      ++missing;
      continue;
    }
    const double ratio = base.real_time_ns > 0.0 ? cur->real_time_ns / base.real_time_ns : 0.0;
    const bool regressed = ratio > 1.0 + tolerance;
    std::printf("%-45s %14.1f %14.1f %8.2fx%s\n", base.name.c_str(), base.real_time_ns,
                cur->real_time_ns, ratio, regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  for (const BenchEntry& cur : current) {
    if (find_entry(baseline, cur.name) == nullptr) {
      std::printf("%-45s %14s %14.1f %9s  (new, not gated)\n", cur.name.c_str(), "-",
                  cur.real_time_ns, "-");
    }
  }

  // Pipeline-metrics gate (informational when either report predates the
  // awd_metrics block).
  const std::vector<DerivedMetric> base_derived = parse_derived_metrics(files[0]);
  const std::vector<DerivedMetric> cur_derived = parse_derived_metrics(files[1]);
  if (!base_derived.empty() && !cur_derived.empty()) {
    std::printf("\n%-45s %14s %14s %9s\n", "derived metric", "baseline", "current",
                "delta");
    for (const DerivedMetric& base : base_derived) {
      bool gated = is_auc_metric(base.name) || is_reach_speedup_metric(base.name) ||
                   is_reach_conservatism_metric(base.name);
      for (const char* name : kGatedDerived) gated = gated || base.name == name;
      const DerivedMetric* cur = find_derived(cur_derived, base.name);
      if (cur == nullptr) {
        // A gated metric that vanished from the current report would
        // silently un-pin its gate — treat it like a dropped benchmark.
        if (gated) {
          std::printf("%-45s %14.4f %14s %9s  MISSING\n", base.name.c_str(), base.value,
                      "-", "-");
          ++missing;
        }
        continue;
      }
      const double delta = cur->value - base.value;
      bool regressed;
      if (is_reach_speedup_metric(base.name)) {
        // Absolute floor: the current speedup must clear --reach-speedup-min
        // regardless of what the baseline measured.
        regressed = cur->value < reach_speedup_min;
      } else {
        const double drop_tolerance = is_auc_metric(base.name) ? auc_tolerance
                                                               : metrics_tolerance;
        regressed = gated && delta < -drop_tolerance;
      }
      std::printf("%-45s %14.4f %14.4f %+9.4f%s\n", base.name.c_str(), base.value,
                  cur->value, delta,
                  regressed ? "  REGRESSION" : (gated ? "" : "  (info)"));
      if (regressed) ++regressions;
    }
  }

  if (regressions > 0 || missing > 0) {
    std::fprintf(stderr,
                 "\nbench_compare: FAIL — %d regression(s) beyond %.0f%%, %d missing "
                 "benchmark(s)\n",
                 regressions, tolerance * 100.0, missing);
    return 1;
  }
  std::printf("\nbench_compare: OK — no per-iteration regression beyond %.0f%%\n",
              tolerance * 100.0);
  return 0;
}
