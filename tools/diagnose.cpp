// diagnose — calibration/diagnostic tool (not part of the benchmark set).
//
// Usage: awd_diagnose                               (build/host diagnostics)
//        awd_diagnose <case_key> <attack> [seed]
//        awd_diagnose --obs <obs-dir> [--top N]
//
// With no arguments it reports the build/host diagnostics a bug report or
// bench JSON should carry — most importantly the compiled, runtime-detected
// and active SIMD kernel levels (DESIGN.md §14).  The per-case form prints
// per-phase residual statistics, deadline distribution, alarm locations for
// both strategies, and run metrics — everything needed to calibrate the free
// parameters (sensor noise, attack magnitude) against the paper's reported
// shapes.  The --obs form ingests a directory written by --obs-out and
// pretty-prints it (counter tables, per-stage profile, top-N slowest spans).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "awd.hpp"
#include "linalg/kernels.hpp"
#include "obs/report.hpp"  // internal: --obs directory pretty-printer

namespace {

using namespace awd;

/// The three SIMD dispatch facts every report should record: what the
/// binary was built with (AWD_SIMD), what the host CPU allows, and what the
/// dispatch is actually serving (differs only under an AWD_SIMD env
/// override or an in-process force_level pin).
void print_simd_levels() {
  namespace kn = linalg::kernels;
  std::printf("simd: compiled=%s runtime=%s active=%s (lane width %zu)\n",
              kn::level_name(kn::compiled_level()), kn::level_name(kn::runtime_level()),
              kn::level_name(kn::active_level()), kn::lane_width(kn::active_level()));
}

AttackKind parse_attack(const std::string& s) {
  if (s == "none") return AttackKind::kNone;
  if (s == "bias") return AttackKind::kBias;
  if (s == "delay") return AttackKind::kDelay;
  if (s == "replay") return AttackKind::kReplay;
  if (s == "ramp") return AttackKind::kRamp;
  if (s == "freeze") return AttackKind::kFreeze;
  if (s == "stealthy_ramp") return AttackKind::kStealthyRamp;
  if (s == "jitter_replay") return AttackKind::kJitterReplay;
  if (s == "coordinated_bias") return AttackKind::kCoordinatedBias;
  if (s == "intermittent_bias") return AttackKind::kIntermittentBias;
  std::fprintf(stderr, "unknown attack '%s'\n", s.c_str());
  std::exit(1);
}

void print_alarm_ranges(const Trace& trace, bool adaptive, const char* label) {
  std::printf("  %s alarms: ", label);
  bool in_range = false;
  std::size_t start = 0;
  std::size_t total = 0;
  for (std::size_t t = 0; t <= trace.size(); ++t) {
    const bool alarm =
        t < trace.size() && (adaptive ? trace[t].adaptive_alarm : trace[t].fixed_alarm);
    if (alarm && !in_range) {
      in_range = true;
      start = t;
    } else if (!alarm && in_range) {
      in_range = false;
      std::printf("[%zu..%zu] ", start, t - 1);
    }
    if (alarm) ++total;
  }
  std::printf(" (total %zu steps)\n", total);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--obs") == 0) {
    std::size_t top_n = 10;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
        top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
        top_n = static_cast<std::size_t>(std::strtoul(argv[i] + 6, nullptr, 10));
      }
    }
    if (!obs::print_obs_summary(argv[2], top_n)) {
      std::fprintf(stderr, "diagnose: %s has neither metrics.json nor trace.json\n",
                   argv[2]);
      return 1;
    }
    return 0;
  }
  if (argc == 1) {
    std::printf("awd_diagnose — build/host diagnostics\n");
    print_simd_levels();
    std::printf("\nusage: %s <case_key> <attack> [seed]\n"
                "       %s --obs <obs-dir> [--top N]\n",
                argv[0], argv[0]);
    return 0;
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <case_key> <attack> [seed]\n"
                 "       %s --obs <obs-dir> [--top N]\n",
                 argv[0], argv[0]);
    return 1;
  }
  const awd::SimulatorCase scase = awd::simulator_case(argv[1]);
  const awd::AttackKind attack = parse_attack(argv[2]);
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  awd::DetectionSystem system(scase, attack, seed);
  const awd::Trace trace = system.run();
  const std::size_t n = scase.model.state_dim();
  const std::size_t a0 = scase.attack_start;
  const std::size_t a1 = a0 + scase.attack_duration;

  // Residual statistics per phase.
  struct Phase {
    const char* name;
    std::size_t lo, hi;
  };
  const Phase phases[] = {{"startup   ", 0, 100},
                          {"pre-attack", 100, a0},
                          {"attack    ", a0, a1},
                          {"recovery  ", a1, trace.size()}};

  std::printf("%s / %s / seed %llu  (tau[0]=%g)\n", scase.key.c_str(), argv[2],
              static_cast<unsigned long long>(seed), scase.tau[0]);
  print_simd_levels();
  std::printf("\nresidual mean per dim (vs tau):\n");
  for (const Phase& ph : phases) {
    if (ph.hi <= ph.lo) continue;
    std::printf("  %s:", ph.name);
    for (std::size_t d = 0; d < n && d < 6; ++d) {
      double s = 0.0;
      for (std::size_t t = ph.lo; t < ph.hi && t < trace.size(); ++t) {
        s += trace[t].residual[d];
      }
      s /= static_cast<double>(ph.hi - ph.lo);
      std::printf(" %7.4f/%g", s, scase.tau[d]);
    }
    std::printf("\n");
  }

  std::printf("\ndeadline / window stats:\n");
  for (const Phase& ph : phases) {
    if (ph.hi <= ph.lo) continue;
    double dl = 0.0, wn = 0.0;
    std::size_t dl_min = SIZE_MAX;
    for (std::size_t t = ph.lo; t < ph.hi && t < trace.size(); ++t) {
      dl += static_cast<double>(trace[t].deadline);
      wn += static_cast<double>(trace[t].window);
      dl_min = std::min(dl_min, trace[t].deadline);
    }
    const double cnt = static_cast<double>(ph.hi - ph.lo);
    std::printf("  %s: mean deadline %5.1f (min %zu), mean window %5.1f\n", ph.name,
                dl / cnt, dl_min, wn / cnt);
  }

  print_alarm_ranges(trace, true, "adaptive");
  print_alarm_ranges(trace, false, "fixed   ");

  awd::MetricsOptions opts;
  opts.warmup = 100;
  const auto ma = awd::compute_metrics(trace, a0, scase.attack_duration,
                                       awd::Strategy::kAdaptive, opts);
  const auto mf = awd::compute_metrics(trace, a0, scase.attack_duration,
                                       awd::Strategy::kFixed, opts);
  std::printf("\nadaptive: fp_rate %.3f fp_exp %d dm %d delay %s (deadline %zu)\n",
              ma.fp_rate, ma.fp_experiment, ma.deadline_miss,
              ma.detection_delay ? std::to_string(*ma.detection_delay).c_str() : "-",
              ma.deadline_at_onset);
  std::printf("fixed:    fp_rate %.3f fp_exp %d dm %d delay %s\n", mf.fp_rate,
              mf.fp_experiment, mf.deadline_miss,
              mf.detection_delay ? std::to_string(*mf.detection_delay).c_str() : "-");
  std::printf("first unsafe: %s\n",
              ma.first_unsafe ? std::to_string(*ma.first_unsafe).c_str() : "never");
  return 0;
}
