// obs_report — summarize an --obs-out directory on the console.
//
// Usage: awd_obs_report <obs-dir> [--top N]
//
// Prints the SIMD dispatch in effect (compiled/runtime/active kernel set —
// timings from an AVX2 build are not comparable to scalar ones, so the
// report says which produced them), then the counter/gauge tables, derived
// ratios, per-stage profile, the window-size histogram, and the top-N
// slowest trace spans recorded by a run launched with --obs-out=<obs-dir>.
// CI runs it over the archived trace directory so the numbers appear in the
// job log next to the artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "linalg/kernels.hpp"
#include "obs/report.hpp"

namespace {

void print_simd_dispatch() {
  namespace kn = awd::linalg::kernels;
  std::printf("simd: compiled=%s runtime=%s active=%s (lane width %zu)\n",
              kn::level_name(kn::compiled_level()), kn::level_name(kn::runtime_level()),
              kn::level_name(kn::active_level()),
              kn::lane_width(kn::active_level()));
}

}  // namespace

int main(int argc, char** argv) {
  const char* dir = nullptr;
  std::size_t top_n = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[i] + 6, nullptr, 10));
    } else if (dir == nullptr) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <obs-dir> [--top N]\n", argv[0]);
      return 2;
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: %s <obs-dir> [--top N]\n", argv[0]);
    return 2;
  }
  print_simd_dispatch();
  if (!awd::obs::print_obs_summary(dir, top_n)) {
    std::fprintf(stderr, "obs_report: %s has neither metrics.json nor trace.json\n", dir);
    return 1;
  }
  return 0;
}
