// prop_fuzz — seeded property-based fuzzing driver for the detection
// pipeline (see DESIGN.md §11 and src/testkit/).
//
// Modes:
//   awd_prop_fuzz --trials=200 [--seed=S] [--property=a,b] [--report=f.json]
//       run N seeded trials per property; exit 1 when any trial fails.
//   awd_prop_fuzz --property=NAME --replay=SEED [limit flags]
//       re-evaluate one property at one exact trial seed — the
//       single-command replay line printed for every failure.
//   awd_prop_fuzz --corpus=DIR
//       replay every committed corpus entry (tests/prop/corpus/*.json).
//   awd_prop_fuzz --list
//       print the property catalogue with paper references.
//
// Reproducibility: a fixed (--seed, --trials, property set, limit flags)
// produces a byte-identical JSON report — unless --time-budget truncates
// the run, which the report flags.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "testkit/corpus.hpp"
#include "testkit/property.hpp"
#include "testkit/runner.hpp"

namespace {

using awd::testkit::CorpusEntry;
using awd::testkit::GenLimits;
using awd::testkit::Property;
using awd::testkit::PropertyResult;
using awd::testkit::RunnerOptions;
using awd::testkit::RunReport;

void print_usage(std::ostream& out) {
  out << "usage: awd_prop_fuzz [options]\n"
         "  --trials=N          trials per property (default 200)\n"
         "  --seed=S            base seed (default 0x5eed2022)\n"
         "  --property=a,b      comma-separated subset of the catalogue\n"
         "  --replay=SEED       evaluate --property once at this exact trial seed\n"
         "  --corpus=DIR        replay every *.json corpus entry under DIR\n"
         "  --report=FILE       write the deterministic JSON report to FILE\n"
         "  --time-budget=SEC   stop early after SEC seconds (flags the report)\n"
         "  --max-steps=N       generation cap: simulation steps (default 220)\n"
         "  --max-window=N      generation cap: detector window w_m (default 48)\n"
         "  --max-dim=N         generation cap: plant state dimension (default 12)\n"
         "  --no-attack         generation cap: disable attack injection\n"
         "  --no-perturb        generation cap: disable dynamics perturbation\n"
         "  --no-shrink         do not shrink failures to minimal limits\n"
         "  --list              print the property catalogue and exit\n"
         "  --verbose           per-trial progress on stderr\n";
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  try {
    std::size_t consumed = 0;
    out = std::stoull(std::string(text), &consumed, 0);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(std::string_view text, double& out) {
  if (text.empty()) return false;
  try {
    std::size_t consumed = 0;
    out = std::stod(std::string(text), &consumed);
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<std::string> split_csv(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view piece =
        text.substr(start, comma == std::string_view::npos ? comma : comma - start);
    if (!piece.empty()) parts.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return parts;
}

void print_catalogue(std::ostream& out) {
  out << "property catalogue (" << awd::testkit::property_catalogue().size()
      << " entries):\n";
  for (const Property& p : awd::testkit::property_catalogue()) {
    out << "  " << p.name << "\n      [" << p.paper_ref << "] " << p.summary << "\n";
  }
}

int run_replay(const std::string& property_name, std::uint64_t replay_seed,
               const GenLimits& limits) {
  const Property* property = awd::testkit::find_property(property_name);
  if (property == nullptr) {
    std::cerr << "error: unknown property '" << property_name
              << "' (see --list for the catalogue)\n";
    return 2;
  }
  const PropertyResult r = awd::testkit::run_single(*property, replay_seed, limits);
  if (r.passed) {
    std::cout << "ok   " << property->name << " seed " << replay_seed << "\n";
    return 0;
  }
  std::cout << "FAIL " << property->name << " seed " << replay_seed << "\n  "
            << r.message << "\n";
  return 1;
}

int run_corpus(const std::string& dir, const GenLimits& limits) {
  std::vector<CorpusEntry> corpus;
  try {
    corpus = awd::testkit::load_corpus(dir);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::size_t failures = 0;
  for (const CorpusEntry& entry : corpus) {
    const Property* property = awd::testkit::find_property(entry.property);
    if (property == nullptr) {
      std::cerr << "error: " << entry.path << " names unknown property '"
                << entry.property << "'\n";
      return 2;
    }
    const PropertyResult r = awd::testkit::run_single(*property, entry.seed, limits);
    std::cout << (r.passed ? "ok   " : "FAIL ") << entry.property << " seed "
              << entry.seed;
    if (!entry.family.empty()) std::cout << " [" << entry.family << "]";
    if (!entry.note.empty()) std::cout << " — " << entry.note;
    std::cout << "\n";
    if (!r.passed) {
      ++failures;
      std::cout << "  " << r.message << "\n";
    }
  }
  std::cout << (corpus.size() - failures) << "/" << corpus.size()
            << " corpus entries passed\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  RunnerOptions options;
  std::string report_path;
  std::string corpus_dir;
  std::string replay_property;
  std::uint64_t replay_seed = 0;
  bool has_replay = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list") {
      print_catalogue(std::cout);
      return 0;
    } else if (arg.rfind("--trials=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_u64(value("--trials="), n) || n == 0) {
        std::cerr << "error: bad --trials value\n";
        return 2;
      }
      options.trials = static_cast<std::size_t>(n);
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_u64(value("--seed="), options.seed)) {
        std::cerr << "error: bad --seed value\n";
        return 2;
      }
    } else if (arg.rfind("--property=", 0) == 0) {
      for (std::string& name : split_csv(value("--property="))) {
        options.properties.push_back(std::move(name));
      }
    } else if (arg.rfind("--replay=", 0) == 0) {
      if (!parse_u64(value("--replay="), replay_seed)) {
        std::cerr << "error: bad --replay value\n";
        return 2;
      }
      has_replay = true;
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = std::string(value("--corpus="));
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = std::string(value("--report="));
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      if (!parse_double(value("--time-budget="), options.time_budget_seconds) ||
          options.time_budget_seconds < 0.0) {
        std::cerr << "error: bad --time-budget value\n";
        return 2;
      }
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_u64(value("--max-steps="), n) || n < 8) {
        std::cerr << "error: bad --max-steps value (need >= 8)\n";
        return 2;
      }
      options.limits.max_steps = static_cast<std::size_t>(n);
    } else if (arg.rfind("--max-window=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_u64(value("--max-window="), n) || n < 4) {
        std::cerr << "error: bad --max-window value (need >= 4)\n";
        return 2;
      }
      options.limits.window_cap = static_cast<std::size_t>(n);
    } else if (arg.rfind("--max-dim=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_u64(value("--max-dim="), n) || n == 0) {
        std::cerr << "error: bad --max-dim value\n";
        return 2;
      }
      options.limits.max_state_dim = static_cast<std::size_t>(n);
    } else if (arg == "--no-attack") {
      options.limits.allow_attack = false;
    } else if (arg == "--no-perturb") {
      options.limits.allow_perturbation = false;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  if (has_replay) {
    if (options.properties.size() != 1) {
      std::cerr << "error: --replay needs exactly one --property=NAME\n";
      return 2;
    }
    return run_replay(options.properties.front(), replay_seed, options.limits);
  }
  if (!corpus_dir.empty()) {
    return run_corpus(corpus_dir, options.limits);
  }

  options.log = verbose ? &std::cerr : nullptr;
  RunReport report;
  try {
    report = awd::testkit::run_properties(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "error: cannot write report to " << report_path << "\n";
      return 2;
    }
    awd::testkit::write_json_report(report, out);
  }

  std::size_t total_trials = 0;
  for (const auto& p : report.properties) {
    total_trials += p.trials;
    if (p.failures == 0) continue;
    for (const auto& f : p.failure_details) {
      std::cout << "FAIL " << p.name << " trial " << f.trial_index << " seed "
                << f.trial_seed << "\n  " << f.shrunk_message
                << "\n  replay: " << f.replay << "\n";
    }
    if (p.failures > p.failure_details.size()) {
      std::cout << "  ... and " << (p.failures - p.failure_details.size())
                << " more failures of " << p.name << "\n";
    }
  }
  std::cout << report.properties.size() << " properties, " << total_trials
            << " trials, " << report.total_failures() << " failures"
            << (report.truncated ? " (TRUNCATED by --time-budget)" : "") << "\n";
  return report.total_failures() == 0 ? 0 : 1;
}
